//! Core E-graph data structure: hashcons, union-find, congruence
//! closure, analyses, distinctions, and clauses.

use std::collections::{HashMap, HashSet};
use std::fmt;

use denali_term::{ops, Op, Symbol, Term};

use crate::ematch::Subst;

/// Identifier of an equivalence class.
///
/// Class ids are stable names for e-nodes' classes; after unions several
/// ids may denote the same class. Use [`EGraph::find`] to canonicalize.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(u32);

impl ClassId {
    /// Dense index (canonical only after [`EGraph::find`]).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// An e-node: an operator applied to equivalence classes.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ENode {
    /// Head operator (symbol or constant; never a pattern variable).
    pub op: Op,
    /// Argument classes.
    pub children: Vec<ClassId>,
}

impl ENode {
    /// Creates an e-node.
    pub fn new(op: Op, children: Vec<ClassId>) -> ENode {
        ENode { op, children }
    }

    /// The head symbol, if the op is a symbol.
    pub fn sym(&self) -> Option<Symbol> {
        self.op.as_sym()
    }
}

/// A literal for recorded clauses: an equality or distinction between
/// classes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EqLiteral {
    /// The two classes are equal.
    Eq(ClassId, ClassId),
    /// The two classes are distinct (uncombinable).
    Ne(ClassId, ClassId),
}

/// What kind of failure an [`EGraphError`] reports.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EGraphErrorKind {
    /// The asserted facts are contradictory (e.g. a union of classes
    /// constrained to be distinct, or two different constants in one
    /// class). In Denali this indicates an unsound axiom set.
    Contradiction,
    /// The class-id budget was exhausted: either the capacity installed
    /// with [`EGraph::set_class_capacity`] or the representation limit
    /// (class ids are `u32`). A pathological input, not a bug — callers
    /// reject the program cleanly instead of panicking.
    TooManyClasses,
}

/// Error raised when the asserted facts are contradictory (an unsound
/// axiom set) or a resource budget is exhausted — see
/// [`EGraphErrorKind`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EGraphError {
    message: String,
    kind: EGraphErrorKind,
}

impl EGraphError {
    fn new(message: impl Into<String>) -> EGraphError {
        EGraphError {
            message: message.into(),
            kind: EGraphErrorKind::Contradiction,
        }
    }

    /// Creates an error with a caller-supplied message (used by layers
    /// that wrap e-graph contradictions with more context).
    pub fn from_message(message: impl Into<String>) -> EGraphError {
        EGraphError::new(message)
    }

    /// Creates a [`EGraphErrorKind::TooManyClasses`] error for the
    /// given capacity.
    pub fn too_many_classes(capacity: usize) -> EGraphError {
        EGraphError {
            message: format!("e-graph class budget exhausted ({capacity} classes)"),
            kind: EGraphErrorKind::TooManyClasses,
        }
    }

    /// Which kind of failure this is.
    pub fn kind(&self) -> EGraphErrorKind {
        self.kind
    }

    /// True if this error reports an exhausted class budget.
    pub fn is_too_many_classes(&self) -> bool {
        self.kind == EGraphErrorKind::TooManyClasses
    }
}

impl fmt::Display for EGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for EGraphError {}

#[derive(Clone, Default, Debug)]
struct EClass {
    nodes: Vec<ENode>,
    /// Parent e-nodes (as inserted, possibly stale) and the class each
    /// parent node belongs to.
    parents: Vec<(ENode, ClassId)>,
    /// Known constant value of every term in this class.
    constant: Option<u64>,
}

/// The changes recorded since the last [`EGraph::take_delta`]: which
/// classes were touched (created, merged, given new nodes, or folded to
/// a constant) and which constant values first appeared.
///
/// The class list may contain stale (merged-away) ids and duplicates;
/// consumers canonicalize through [`EGraph::find`] — usually via
/// [`EGraph::dirty_cone`], which also propagates dirtiness upward
/// through the parent index.
#[derive(Clone, Default, Debug)]
pub struct Delta {
    /// Ids of classes touched since the last drain (possibly stale).
    pub classes: Vec<ClassId>,
    /// Constant values that were first registered since the last drain.
    pub constants: Vec<u64>,
}

impl Delta {
    /// True if nothing was journaled.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty() && self.constants.is_empty()
    }

    /// Folds another delta into this one (preserving event order).
    pub fn absorb(&mut self, other: Delta) {
        self.classes.extend(other.classes);
        self.constants.extend(other.constants);
    }
}

/// Monotone counters over the e-graph's mutating operations, for
/// observability: how much work saturation actually did, round by
/// round. Snapshot with [`EGraph::op_counts`] and subtract snapshots
/// with [`OpCounts::since`] to get per-round deltas.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct OpCounts {
    /// [`EGraph::add_node`] calls (including hashcons hits).
    pub adds: u64,
    /// Adds answered by the hashcons table (no new node).
    pub hits: u64,
    /// Adds that created a new e-node (and class).
    pub new_nodes: u64,
    /// Class merges actually performed (a union of two distinct roots).
    pub unions: u64,
    /// The subset of `unions` performed by congruence repair inside
    /// [`EGraph::rebuild`] (as opposed to asserted by the caller).
    pub congruence_unions: u64,
    /// Classes folded to a constant value after creation.
    pub folds: u64,
    /// [`EGraph::rebuild`] calls.
    pub rebuilds: u64,
}

impl OpCounts {
    /// Field-wise difference from an earlier snapshot.
    pub fn since(self, before: OpCounts) -> OpCounts {
        OpCounts {
            adds: self.adds - before.adds,
            hits: self.hits - before.hits,
            new_nodes: self.new_nodes - before.new_nodes,
            unions: self.unions - before.unions,
            congruence_unions: self.congruence_unions - before.congruence_unions,
            folds: self.folds - before.folds,
            rebuilds: self.rebuilds - before.rebuilds,
        }
    }
}

/// The E-graph. See the [crate docs](crate) for an overview and example.
#[derive(Clone, Default, Debug)]
pub struct EGraph {
    uf: Vec<u32>,
    classes: HashMap<ClassId, EClass>,
    memo: HashMap<ENode, ClassId>,
    /// Canonical ids of constant classes, for eager folding.
    constants: HashMap<u64, ClassId>,
    /// Classes whose parents need congruence repair.
    dirty: Vec<ClassId>,
    /// Canonicalized (smaller, larger) root pairs that must never merge.
    uncombinable: HashSet<(ClassId, ClassId)>,
    /// Recorded clauses awaiting literal deletion / unit assertion.
    clauses: Vec<Vec<EqLiteral>>,
    /// Total number of e-node insertions (distinct canonical nodes).
    node_count: usize,
    /// Operator index: symbol → classes that (at insertion time) held a
    /// node with that head. Entries may be stale; readers canonicalize.
    op_index: HashMap<Symbol, Vec<ClassId>>,
    /// Monotone mutation counter: bumped on every journaled change, so
    /// readers can cheaply detect "something happened since I looked".
    generation: u64,
    /// Change journal since the last [`EGraph::take_delta`] (always on;
    /// the cost is one `Vec` push per mutation, proportional to work
    /// already being done).
    journal: Delta,
    /// Operation counters (always on; a few integer bumps per op).
    counts: OpCounts,
    /// True while [`EGraph::rebuild`] runs, so unions performed during
    /// repair are attributed to congruence in [`OpCounts`].
    repairing: bool,
    /// Maximum number of class ids ever allocated (`0` = unlimited, the
    /// default). Exceeding it turns [`EGraph::add_node`] into a clean
    /// [`EGraphErrorKind::TooManyClasses`] error instead of unbounded
    /// growth.
    class_capacity: usize,
}

// The matcher freezes the e-graph and e-matches axioms against it from
// multiple threads; every read accessor takes `&self`, and this pins the
// auto-trait obligations so a future non-Sync field (e.g. an interior-
// mutability cache) fails to compile here rather than in the matcher.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EGraph>();
};

impl EGraph {
    /// Creates an empty e-graph.
    pub fn new() -> EGraph {
        EGraph::default()
    }

    /// Number of (canonical) e-nodes ever added.
    pub fn num_nodes(&self) -> usize {
        self.node_count
    }

    /// Caps the number of class ids this e-graph may ever allocate
    /// (`0` = unlimited). Once the cap is reached, [`EGraph::add_node`]
    /// (and everything built on it) fails with a
    /// [`EGraphErrorKind::TooManyClasses`] error rather than growing —
    /// or, at the `u32` representation limit, panicking.
    pub fn set_class_capacity(&mut self, capacity: usize) {
        self.class_capacity = capacity;
    }

    /// Number of live equivalence classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// The mutation generation: a monotone counter bumped on every
    /// journaled change (class created, classes merged, constant
    /// folded). Equal generations imply the e-graph has not changed.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Snapshot of the operation counters (see [`OpCounts`]).
    pub fn op_counts(&self) -> OpCounts {
        self.counts
    }

    /// Drains and returns the change journal: every class touched and
    /// every constant value first registered since the previous drain
    /// (or since creation, for the first call). Pair with
    /// [`EGraph::dirty_cone`] to seed delta-driven e-matching.
    pub fn take_delta(&mut self) -> Delta {
        std::mem::take(&mut self.journal)
    }

    fn journal_class(&mut self, id: ClassId) {
        self.generation += 1;
        self.journal.classes.push(id);
    }

    /// Canonical representative of `id`'s class.
    pub fn find(&self, id: ClassId) -> ClassId {
        let mut i = id.0;
        while self.uf[i as usize] != i {
            i = self.uf[i as usize];
        }
        ClassId(i)
    }

    fn find_compress(&mut self, id: ClassId) -> ClassId {
        let root = self.find(id);
        let mut i = id.0;
        while self.uf[i as usize] != root.0 {
            let next = self.uf[i as usize];
            self.uf[i as usize] = root.0;
            i = next;
        }
        root
    }

    fn canonicalize(&self, node: &ENode) -> ENode {
        ENode {
            op: node.op,
            children: node.children.iter().map(|&c| self.find(c)).collect(),
        }
    }

    /// Adds an e-node (children given as classes), returning its class.
    ///
    /// Congruent nodes are hash-consed to the same class. Constant
    /// folding is eager: a node whose children all have known constant
    /// values is unified with the literal constant's class.
    ///
    /// # Errors
    ///
    /// Fails with [`EGraphErrorKind::TooManyClasses`] when allocating a
    /// new class would exceed [`EGraph::set_class_capacity`] (or the
    /// `u32` class-id representation limit). Hashcons hits never fail —
    /// only genuinely new nodes consume capacity.
    pub fn add_node(&mut self, op: Op, children: Vec<ClassId>) -> Result<ClassId, EGraphError> {
        self.counts.adds += 1;
        let node = self.canonicalize(&ENode::new(op, children));
        if let Some(&existing) = self.memo.get(&node) {
            self.counts.hits += 1;
            return Ok(self.find(existing));
        }
        if self.class_capacity != 0 && self.uf.len() >= self.class_capacity {
            return Err(EGraphError::too_many_classes(self.class_capacity));
        }
        self.counts.new_nodes += 1;
        let id = ClassId(
            u32::try_from(self.uf.len())
                .map_err(|_| EGraphError::too_many_classes(u32::MAX as usize))?,
        );
        self.uf.push(id.0);
        let constant = self.node_constant(&node);
        for &child in &node.children {
            self.classes
                .get_mut(&child)
                .expect("canonical child class")
                .parents
                .push((node.clone(), id));
        }
        self.classes.insert(
            id,
            EClass {
                nodes: vec![node.clone()],
                parents: Vec::new(),
                constant,
            },
        );
        if let Op::Sym(sym) = op {
            self.op_index.entry(sym).or_default().push(id);
        }
        self.memo.insert(node, id);
        self.node_count += 1;
        self.journal_class(id);
        // Register / fold constants.
        if let Some(value) = constant {
            match self.constants.get(&value) {
                None => {
                    self.constants.insert(value, id);
                    self.journal.constants.push(value);
                    // Make sure the literal constant node itself exists so
                    // the class always contains `Const(value)`.
                    if op != Op::Const(value) {
                        let lit = self.add_node(Op::Const(value), Vec::new())?;
                        self.union(lit, id).expect("fresh constant cannot conflict");
                    }
                }
                Some(&existing) => {
                    let existing = self.find(existing);
                    self.union(existing, id)
                        .expect("equal constants cannot conflict");
                }
            }
        }
        Ok(self.find(id))
    }

    fn node_constant(&self, node: &ENode) -> Option<u64> {
        match node.op {
            Op::Const(c) => Some(c),
            Op::Var(_) => None,
            Op::Sym(sym) => {
                if node.children.is_empty() {
                    return None;
                }
                let args: Option<Vec<u64>> = node
                    .children
                    .iter()
                    .map(|&c| self.classes.get(&c).and_then(|cl| cl.constant))
                    .collect();
                ops::eval(sym, &args?)
            }
        }
    }

    /// Adds a ground term, returning its class.
    ///
    /// # Errors
    ///
    /// Fails if the term contains pattern variables.
    pub fn add_term(&mut self, term: &Term) -> Result<ClassId, EGraphError> {
        match term.op() {
            Op::Var(v) => Err(EGraphError::new(format!(
                "cannot add pattern variable ?{v} to the e-graph"
            ))),
            op => {
                let children = term
                    .args()
                    .iter()
                    .map(|a| self.add_term(a))
                    .collect::<Result<Vec<_>, _>>()?;
                self.add_node(op, children)
            }
        }
    }

    /// Instantiates a pattern term: variables are looked up in `subst`
    /// (mapping variable symbols to classes) and the rest is added.
    ///
    /// # Errors
    ///
    /// Fails if a pattern variable is missing from `subst`.
    pub fn add_instantiation(
        &mut self,
        pattern: &Term,
        subst: &Subst,
    ) -> Result<ClassId, EGraphError> {
        match pattern.op() {
            Op::Var(v) => subst
                .get(v)
                .map(|c| self.find(c))
                .ok_or_else(|| EGraphError::new(format!("unbound pattern variable ?{v}"))),
            op => {
                let children = pattern
                    .args()
                    .iter()
                    .map(|a| self.add_instantiation(a, subst))
                    .collect::<Result<Vec<_>, _>>()?;
                self.add_node(op, children)
            }
        }
    }

    /// Looks up the class of a ground term without inserting anything.
    pub fn lookup_term(&self, term: &Term) -> Option<ClassId> {
        let children = term
            .args()
            .iter()
            .map(|a| self.lookup_term(a))
            .collect::<Option<Vec<_>>>()?;
        let node = self.canonicalize(&ENode::new(term.op(), children));
        self.memo.get(&node).map(|&c| self.find(c))
    }

    /// Merges two classes.
    ///
    /// Returns the surviving root. Congruence repair is deferred to
    /// [`EGraph::rebuild`].
    ///
    /// # Errors
    ///
    /// Fails if the classes are constrained to be distinct or carry
    /// different constant values (contradiction — an unsound axiom).
    pub fn union(&mut self, a: ClassId, b: ClassId) -> Result<ClassId, EGraphError> {
        let a = self.find_compress(a);
        let b = self.find_compress(b);
        if a == b {
            return Ok(a);
        }
        if self.uncombinable.contains(&ordered(a, b)) {
            return Err(EGraphError::new(format!(
                "contradiction: classes {a} and {b} are constrained to be distinct"
            )));
        }
        self.counts.unions += 1;
        if self.repairing {
            self.counts.congruence_unions += 1;
        }
        // Union by size (number of nodes).
        let (root, other) = if self.classes[&a].nodes.len() >= self.classes[&b].nodes.len() {
            (a, b)
        } else {
            (b, a)
        };
        let merged = self.classes.remove(&other).expect("live class");
        self.uf[other.0 as usize] = root.0;
        let root_class = self.classes.get_mut(&root).expect("live class");
        root_class.nodes.extend(merged.nodes);
        root_class.parents.extend(merged.parents);
        let root_const = root_class.constant;
        let new_const = match (root_const, merged.constant) {
            (Some(x), Some(y)) if x != y => {
                return Err(EGraphError::new(format!(
                    "contradiction: class holds two constants {x} and {y}"
                )));
            }
            (x, y) => x.or(y),
        };
        self.classes.get_mut(&root).expect("live class").constant = new_const;
        if let Some(v) = new_const {
            if let std::collections::hash_map::Entry::Vacant(e) = self.constants.entry(v) {
                e.insert(root);
                self.journal.constants.push(v);
            }
        }
        // Re-point uncombinable pairs involving `other` at `root`.
        let stale: Vec<(ClassId, ClassId)> = self
            .uncombinable
            .iter()
            .filter(|&&(x, y)| x == other || y == other)
            .copied()
            .collect();
        for pair in stale {
            self.uncombinable.remove(&pair);
            let (x, y) = pair;
            let x = if x == other { root } else { x };
            let y = if y == other { root } else { y };
            self.uncombinable.insert(ordered(x, y));
        }
        self.dirty.push(root);
        self.journal_class(root);
        Ok(root)
    }

    /// Constrains two classes to be forever distinct (a paper
    /// "distinction", `T ≠ U`).
    ///
    /// # Errors
    ///
    /// Fails if the classes are already equal.
    pub fn assert_distinct(&mut self, a: ClassId, b: ClassId) -> Result<(), EGraphError> {
        let a = self.find(a);
        let b = self.find(b);
        if a == b {
            return Err(EGraphError::new(format!(
                "contradiction: distinction asserted within one class {a}"
            )));
        }
        self.uncombinable.insert(ordered(a, b));
        Ok(())
    }

    /// Records a clause (disjunction of literals). Untenable literals are
    /// deleted during [`EGraph::rebuild`]; a surviving unit literal is
    /// asserted (§5 of the paper).
    pub fn add_clause(&mut self, literals: Vec<EqLiteral>) {
        self.clauses.push(literals);
    }

    /// The known constant value of a class, if any.
    pub fn constant(&self, id: ClassId) -> Option<u64> {
        self.classes.get(&self.find(id)).and_then(|c| c.constant)
    }

    /// The canonical class of the literal constant `value`, if present.
    pub fn constant_class(&self, value: u64) -> Option<ClassId> {
        self.constants.get(&value).map(|&c| self.find(c))
    }

    /// True if the two classes are provably different values: distinct
    /// constants, an asserted distinction, or a shared base pointer with
    /// different constant offsets (the analysis behind the paper's
    /// `p ≠ p + 8` step).
    pub fn provably_distinct(&self, a: ClassId, b: ClassId) -> bool {
        let a = self.find(a);
        let b = self.find(b);
        if a == b {
            return false;
        }
        if let (Some(x), Some(y)) = (self.constant(a), self.constant(b)) {
            return x != y;
        }
        if self.uncombinable.contains(&ordered(a, b)) {
            return true;
        }
        // Base+offset analysis.
        for (base_a, off_a) in self.base_offsets(a) {
            for (base_b, off_b) in self.base_offsets(b) {
                if base_a == base_b && off_a != off_b {
                    return true;
                }
            }
        }
        false
    }

    /// All `(base_class, offset)` decompositions of a class: the class
    /// itself at offset 0, plus every `add64/addq/sub64/subq(base, const)`
    /// node in it. Used by the code generator to fold address arithmetic
    /// into load/store displacement fields.
    pub fn address_decompositions(&self, id: ClassId) -> Vec<(ClassId, u64)> {
        self.base_offsets(id)
    }

    fn base_offsets(&self, id: ClassId) -> Vec<(ClassId, u64)> {
        let id = self.find(id);
        let mut out = vec![(id, 0u64)];
        let Some(class) = self.classes.get(&id) else {
            return out;
        };
        for node in &class.nodes {
            let Some(sym) = node.sym() else { continue };
            let name = sym.as_str();
            let negate = match name {
                "add64" | "addq" => false,
                "sub64" | "subq" => true,
                _ => continue,
            };
            if node.children.len() != 2 {
                continue;
            }
            let lhs = self.find(node.children[0]);
            let rhs = self.find(node.children[1]);
            if let Some(c) = self.constant(rhs) {
                let off = if negate { c.wrapping_neg() } else { c };
                out.push((lhs, off));
            }
            if !negate {
                if let Some(c) = self.constant(lhs) {
                    out.push((rhs, c));
                }
            }
        }
        out
    }

    /// Restores the congruence invariant, folds newly constant parents,
    /// and processes recorded clauses, repeating until a fixpoint.
    ///
    /// # Errors
    ///
    /// Propagates contradictions discovered while merging.
    pub fn rebuild(&mut self) -> Result<(), EGraphError> {
        self.counts.rebuilds += 1;
        self.repairing = true;
        let result = self.rebuild_loop();
        self.repairing = false;
        result
    }

    fn rebuild_loop(&mut self) -> Result<(), EGraphError> {
        loop {
            while let Some(dirty) = self.dirty.pop() {
                let dirty = self.find(dirty);
                let parents = {
                    let Some(class) = self.classes.get_mut(&dirty) else {
                        continue;
                    };
                    std::mem::take(&mut class.parents)
                };
                // `new_parents` must preserve first-seen order: it is
                // written back to `class.parents`, whose order decides
                // the union order on the *next* repair of this class.
                // A plain HashMap here leaks hash-seed nondeterminism
                // into node-list order.
                let mut new_parents: Vec<(ENode, ClassId)> = Vec::new();
                let mut parent_index: HashMap<ENode, usize> = HashMap::new();
                for (node, node_class) in parents {
                    self.memo.remove(&node);
                    let canon = self.canonicalize(&node);
                    let node_class = self.find(node_class);
                    if let Some(&i) = parent_index.get(&canon) {
                        self.union(new_parents[i].1, node_class)?;
                    }
                    let node_class = self.find(node_class);
                    if let Some(&memo_class) = self.memo.get(&canon) {
                        let memo_class = self.find(memo_class);
                        if memo_class != node_class {
                            self.union(memo_class, node_class)?;
                        }
                    }
                    let node_class = self.find(node_class);
                    self.memo.insert(canon.clone(), node_class);
                    match parent_index.get(&canon) {
                        Some(&i) => new_parents[i].1 = node_class,
                        None => {
                            parent_index.insert(canon.clone(), new_parents.len());
                            new_parents.push((canon, node_class));
                        }
                    }
                    // Constant propagation: the child's merge may have
                    // given this parent a constant value.
                    self.try_fold_parent(dirty, node_class)?;
                }
                let dirty = self.find(dirty);
                if let Some(class) = self.classes.get_mut(&dirty) {
                    class.parents.extend(new_parents);
                }
            }
            // Canonicalize and dedupe the node lists.
            let ids: Vec<ClassId> = self.classes.keys().copied().collect();
            for id in ids {
                let Some(class) = self.classes.get(&id) else {
                    continue;
                };
                let canon_nodes: Vec<ENode> =
                    class.nodes.iter().map(|n| self.canonicalize(n)).collect();
                let mut seen = HashSet::new();
                let deduped: Vec<ENode> = canon_nodes
                    .into_iter()
                    .filter(|n| seen.insert(n.clone()))
                    .collect();
                self.classes.get_mut(&id).expect("live class").nodes = deduped;
            }
            if !self.process_clauses()? && self.dirty.is_empty() {
                return Ok(());
            }
        }
    }

    fn try_fold_parent(
        &mut self,
        _child: ClassId,
        parent_class: ClassId,
    ) -> Result<(), EGraphError> {
        let parent_class = self.find(parent_class);
        if self.constant(parent_class).is_some() {
            return Ok(());
        }
        let nodes: Vec<ENode> = match self.classes.get(&parent_class) {
            Some(c) => c.nodes.clone(),
            None => return Ok(()),
        };
        for node in nodes {
            if let Some(value) = self.node_constant(&self.canonicalize(&node)) {
                // Record the constant and unify with the literal's class.
                self.counts.folds += 1;
                let parent_class = self.find(parent_class);
                self.classes
                    .get_mut(&parent_class)
                    .expect("live class")
                    .constant = Some(value);
                // The class now matches constant patterns it did not
                // match before — journal it even though the union below
                // usually covers it.
                self.journal_class(parent_class);
                let lit = self.add_node(Op::Const(value), Vec::new())?;
                let lit = self.find(lit);
                let parent_class = self.find(parent_class);
                if lit != parent_class {
                    self.union(lit, parent_class)?;
                }
                return Ok(());
            }
        }
        Ok(())
    }

    /// One pass of clause processing. Returns true if any assertion was
    /// made (requiring another rebuild round).
    fn process_clauses(&mut self) -> Result<bool, EGraphError> {
        let mut changed = false;
        let mut remaining = Vec::new();
        let clauses = std::mem::take(&mut self.clauses);
        for clause in clauses {
            let mut satisfied = false;
            let mut live = Vec::new();
            for lit in clause {
                match lit {
                    EqLiteral::Eq(a, b) => {
                        if self.find(a) == self.find(b) {
                            satisfied = true;
                            break;
                        }
                        if !self.provably_distinct(a, b) {
                            live.push(lit); // tenable
                        }
                    }
                    EqLiteral::Ne(a, b) => {
                        if self.provably_distinct(a, b) {
                            satisfied = true;
                            break;
                        }
                        if self.find(a) != self.find(b) {
                            live.push(lit);
                        }
                    }
                }
            }
            if satisfied {
                continue;
            }
            match live.len() {
                0 => {
                    return Err(EGraphError::new(
                        "contradiction: all literals of a recorded clause are untenable",
                    ));
                }
                1 => {
                    match live[0] {
                        EqLiteral::Eq(a, b) => {
                            self.union(a, b)?;
                        }
                        EqLiteral::Ne(a, b) => {
                            self.assert_distinct(a, b)?;
                        }
                    }
                    changed = true;
                }
                _ => remaining.push(live),
            }
        }
        self.clauses.extend(remaining);
        Ok(changed)
    }

    /// Canonical ids of the classes that contain at least one node with
    /// head operator `sym`. This is the matcher's top-level index: a
    /// pattern `(f ...)` can only match inside these classes.
    pub fn classes_with_op(&self, sym: Symbol) -> Vec<ClassId> {
        let Some(ids) = self.op_index.get(&sym) else {
            return Vec::new();
        };
        let mut out: Vec<ClassId> = ids.iter().map(|&c| self.find(c)).collect();
        out.sort();
        out.dedup();
        // Stale entries can point at classes that no longer hold the op
        // (nodes are only ever merged, never removed, so a class that
        // absorbed one keeps it; no filtering needed).
        out
    }

    /// Canonical ids of all live classes.
    pub fn classes(&self) -> Vec<ClassId> {
        let mut ids: Vec<ClassId> = self.classes.keys().copied().collect();
        ids.sort();
        ids
    }

    /// The canonical classes holding a node that uses `id` as a child
    /// (the parent/uses index), sorted and deduplicated. Parent entries
    /// survive merges — a class absorbed by a union hands its parent
    /// list to the surviving root — so the index is complete for every
    /// node ever inserted.
    pub fn parent_classes(&self, id: ClassId) -> Vec<ClassId> {
        let id = self.find(id);
        let Some(class) = self.classes.get(&id) else {
            return Vec::new();
        };
        let mut out: Vec<ClassId> = class.parents.iter().map(|&(_, pc)| self.find(pc)).collect();
        out.sort();
        out.dedup();
        out
    }

    /// The set of canonical classes within `depth` parent (uses) edges
    /// of any seed class, seeds included.
    ///
    /// This is the dirty set for delta-driven e-matching: if a class
    /// `x` changed, every pattern match that could newly succeed (or
    /// whose canonical substitution could have changed) has `x`
    /// somewhere in its match tree, so the match's *root* class lies at
    /// most `pattern depth` parent steps above `x`. Seeds may be stale
    /// ids; they are canonicalized here.
    pub fn dirty_cone(&self, seeds: &[ClassId], depth: usize) -> HashSet<ClassId> {
        let mut cone: HashSet<ClassId> = seeds.iter().map(|&c| self.find(c)).collect();
        let mut frontier: Vec<ClassId> = cone.iter().copied().collect();
        for _ in 0..depth {
            let mut next = Vec::new();
            for &c in &frontier {
                let Some(class) = self.classes.get(&c) else {
                    continue;
                };
                for &(_, pc) in &class.parents {
                    let pc = self.find(pc);
                    if cone.insert(pc) {
                        next.push(pc);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        cone
    }

    /// The canonicalized, deduplicated e-nodes of a class.
    pub fn nodes(&self, id: ClassId) -> Vec<ENode> {
        let id = self.find(id);
        let Some(class) = self.classes.get(&id) else {
            return Vec::new();
        };
        let mut seen = HashSet::new();
        class
            .nodes
            .iter()
            .map(|n| self.canonicalize(n))
            .filter(|n| seen.insert(n.clone()))
            .collect()
    }
}

fn ordered(a: ClassId, b: ClassId) -> (ClassId, ClassId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> Term {
        let sexpr = denali_term::sexpr::parse_one(s).unwrap();
        Term::from_sexpr(&sexpr, &[]).unwrap()
    }

    #[test]
    fn hashconsing_shares_structure() {
        let mut eg = EGraph::new();
        let a = eg.add_term(&t("(add64 x y)")).unwrap();
        let b = eg.add_term(&t("(add64 x y)")).unwrap();
        assert_eq!(a, b);
        // x, y, add64(x,y) = 3 classes.
        assert_eq!(eg.num_classes(), 3);
    }

    #[test]
    fn class_capacity_fails_cleanly_instead_of_panicking() {
        let mut eg = EGraph::new();
        eg.set_class_capacity(2);
        // x, y fit; add64(x, y) would be the third class.
        let err = eg.add_term(&t("(add64 x y)")).unwrap_err();
        assert!(err.is_too_many_classes(), "unexpected error: {err}");
        assert_eq!(err.kind(), EGraphErrorKind::TooManyClasses);
        assert!(err.to_string().contains("class budget"));
        assert_eq!(eg.num_classes(), 2);
        // Hashcons hits never consume capacity: re-adding existing
        // terms still succeeds at the limit.
        let x = eg.add_term(&t("x")).unwrap();
        assert_eq!(eg.find(x), x);
    }

    #[test]
    fn union_merges_and_find_canonicalizes() {
        let mut eg = EGraph::new();
        let x = eg.add_term(&t("x")).unwrap();
        let y = eg.add_term(&t("y")).unwrap();
        assert_ne!(eg.find(x), eg.find(y));
        eg.union(x, y).unwrap();
        eg.rebuild().unwrap();
        assert_eq!(eg.find(x), eg.find(y));
    }

    #[test]
    fn congruence_closure_merges_parents() {
        // x = y implies f(x) = f(y).
        let mut eg = EGraph::new();
        let fx = eg.add_term(&t("(f x)")).unwrap();
        let fy = eg.add_term(&t("(f y)")).unwrap();
        let x = eg.lookup_term(&t("x")).unwrap();
        let y = eg.lookup_term(&t("y")).unwrap();
        assert_ne!(eg.find(fx), eg.find(fy));
        eg.union(x, y).unwrap();
        eg.rebuild().unwrap();
        assert_eq!(eg.find(fx), eg.find(fy));
    }

    #[test]
    fn congruence_closure_is_transitive_through_layers() {
        // x = y implies g(f(x)) = g(f(y)).
        let mut eg = EGraph::new();
        let gfx = eg.add_term(&t("(g (f x))")).unwrap();
        let gfy = eg.add_term(&t("(g (f y))")).unwrap();
        let x = eg.lookup_term(&t("x")).unwrap();
        let y = eg.lookup_term(&t("y")).unwrap();
        eg.union(x, y).unwrap();
        eg.rebuild().unwrap();
        assert_eq!(eg.find(gfx), eg.find(gfy));
    }

    #[test]
    fn constant_folding_is_eager() {
        let mut eg = EGraph::new();
        let four = eg.add_term(&Term::constant(4)).unwrap();
        let pow = eg.add_term(&t("(pow 2 2)")).unwrap();
        assert_eq!(eg.find(four), eg.find(pow));
        assert_eq!(eg.constant(pow), Some(4));
        assert_eq!(eg.constant_class(4), Some(eg.find(four)));
    }

    #[test]
    fn folding_propagates_after_union() {
        // n has no constant; add64(n, 1) unknown. After n = 2 the parent
        // must fold to 3.
        let mut eg = EGraph::new();
        let sum = eg.add_term(&t("(add64 n 1)")).unwrap();
        let n = eg.lookup_term(&t("n")).unwrap();
        assert_eq!(eg.constant(sum), None);
        let two = eg.add_term(&Term::constant(2)).unwrap();
        eg.union(n, two).unwrap();
        eg.rebuild().unwrap();
        assert_eq!(eg.constant(sum), Some(3));
        let three = eg.add_term(&Term::constant(3)).unwrap();
        assert_eq!(eg.find(sum), eg.find(three));
    }

    #[test]
    fn conflicting_constants_are_contradictions() {
        let mut eg = EGraph::new();
        let one = eg.add_term(&Term::constant(1)).unwrap();
        let two = eg.add_term(&Term::constant(2)).unwrap();
        assert!(eg.union(one, two).is_err());
    }

    #[test]
    fn distinctions_block_unions() {
        let mut eg = EGraph::new();
        let x = eg.add_term(&t("x")).unwrap();
        let y = eg.add_term(&t("y")).unwrap();
        eg.assert_distinct(x, y).unwrap();
        assert!(eg.provably_distinct(x, y));
        assert!(eg.union(x, y).is_err());
    }

    #[test]
    fn distinction_in_same_class_is_contradiction() {
        let mut eg = EGraph::new();
        let x = eg.add_term(&t("x")).unwrap();
        let y = eg.add_term(&t("y")).unwrap();
        eg.union(x, y).unwrap();
        eg.rebuild().unwrap();
        assert!(eg.assert_distinct(x, y).is_err());
    }

    #[test]
    fn base_offset_analysis_separates_p_and_p_plus_8() {
        let mut eg = EGraph::new();
        let p = eg.add_term(&t("p")).unwrap();
        let p8 = eg.add_term(&t("(add64 p 8)")).unwrap();
        let p8b = eg.add_term(&t("(addq p 8)")).unwrap();
        eg.rebuild().unwrap();
        assert!(eg.provably_distinct(p, p8));
        assert!(eg.provably_distinct(p, p8b));
        // Two different offsets from the same base.
        let p16 = eg.add_term(&t("(add64 p 16)")).unwrap();
        assert!(eg.provably_distinct(p8, p16));
        // Same offset is not distinct (they may be equal).
        assert!(!eg.provably_distinct(p8, p8b));
        // Unknown relationship is not distinct.
        let q = eg.add_term(&t("q")).unwrap();
        assert!(!eg.provably_distinct(p, q));
    }

    #[test]
    fn clause_unit_literal_is_asserted() {
        // The paper's select/store example: the clause
        //   p = p+8  ∨  select(store(M,p,x), p+8) = select(M, p+8)
        // loses its first literal to the offset analysis and asserts the
        // second.
        let mut eg = EGraph::new();
        let p = eg.add_term(&t("p")).unwrap();
        let p8 = eg.add_term(&t("(add64 p 8)")).unwrap();
        let lhs = eg
            .add_term(&t("(select (store M p x) (add64 p 8))"))
            .unwrap();
        let rhs = eg.add_term(&t("(select M (add64 p 8))")).unwrap();
        assert_ne!(eg.find(lhs), eg.find(rhs));
        eg.add_clause(vec![EqLiteral::Eq(p, p8), EqLiteral::Eq(lhs, rhs)]);
        eg.rebuild().unwrap();
        assert_eq!(eg.find(lhs), eg.find(rhs));
    }

    #[test]
    fn clause_satisfied_by_true_literal_is_dropped() {
        let mut eg = EGraph::new();
        let x = eg.add_term(&t("x")).unwrap();
        let y = eg.add_term(&t("y")).unwrap();
        let z = eg.add_term(&t("z")).unwrap();
        eg.union(x, y).unwrap();
        // x = y is already true; the clause must not force y = z.
        eg.add_clause(vec![EqLiteral::Eq(x, y), EqLiteral::Eq(y, z)]);
        eg.rebuild().unwrap();
        assert_ne!(eg.find(y), eg.find(z));
    }

    #[test]
    fn clause_with_all_untenable_literals_is_a_contradiction() {
        let mut eg = EGraph::new();
        let one = eg.add_term(&Term::constant(1)).unwrap();
        let two = eg.add_term(&Term::constant(2)).unwrap();
        let three = eg.add_term(&Term::constant(3)).unwrap();
        eg.add_clause(vec![EqLiteral::Eq(one, two), EqLiteral::Eq(two, three)]);
        assert!(eg.rebuild().is_err());
    }

    #[test]
    fn ne_literal_asserts_distinction() {
        let mut eg = EGraph::new();
        let x = eg.add_term(&t("x")).unwrap();
        let y = eg.add_term(&t("y")).unwrap();
        let one = eg.add_term(&Term::constant(1)).unwrap();
        let one_b = eg.add_term(&Term::constant(1)).unwrap();
        // First literal Eq(1,1)... is satisfied, so nothing asserted.
        eg.add_clause(vec![EqLiteral::Eq(one, one_b), EqLiteral::Ne(x, y)]);
        eg.rebuild().unwrap();
        assert!(!eg.provably_distinct(x, y));
        // Now a clause whose only tenable literal is the distinction.
        let two = eg.add_term(&Term::constant(2)).unwrap();
        eg.add_clause(vec![EqLiteral::Eq(one, two), EqLiteral::Ne(x, y)]);
        eg.rebuild().unwrap();
        assert!(eg.provably_distinct(x, y));
        assert!(eg.union(x, y).is_err());
    }

    #[test]
    fn nodes_are_canonical_and_deduped() {
        let mut eg = EGraph::new();
        let fx = eg.add_term(&t("(f x)")).unwrap();
        let fy = eg.add_term(&t("(f y)")).unwrap();
        let x = eg.lookup_term(&t("x")).unwrap();
        let y = eg.lookup_term(&t("y")).unwrap();
        eg.union(x, y).unwrap();
        eg.rebuild().unwrap();
        // f(x) and f(y) are now the same canonical node.
        let nodes = eg.nodes(fx);
        assert_eq!(nodes.len(), 1);
        assert_eq!(eg.find(fx), eg.find(fy));
    }

    #[test]
    fn lookup_term_does_not_insert() {
        let mut eg = EGraph::new();
        eg.add_term(&t("(f x)")).unwrap();
        let before = eg.num_nodes();
        assert!(eg.lookup_term(&t("(g x)")).is_none());
        assert_eq!(eg.num_nodes(), before);
    }

    #[test]
    fn add_instantiation_uses_bindings() {
        let mut eg = EGraph::new();
        let reg6 = eg.add_term(&t("reg6")).unwrap();
        let one = eg.add_term(&Term::constant(1)).unwrap();
        let pattern = Term::call("s4addq", vec![Term::var("k"), Term::var("n")]);
        let mut subst = Subst::new();
        subst.insert(Symbol::intern("k"), reg6);
        subst.insert(Symbol::intern("n"), one);
        let c = eg.add_instantiation(&pattern, &subst).unwrap();
        assert_eq!(eg.lookup_term(&t("(s4addq reg6 1)")), Some(eg.find(c)));
        // Missing binding errors.
        let bad = Term::var("missing");
        assert!(eg.add_instantiation(&bad, &subst).is_err());
    }

    #[test]
    fn figure2_shift_equivalence_via_congruence() {
        // Manually apply the Figure 2 steps: after asserting
        // mul64(reg6,4) = shl64(reg6,2), both are in one class.
        let mut eg = EGraph::new();
        let goal = eg.add_term(&t("(add64 (mul64 reg6 4) 1)")).unwrap();
        let mul = eg.lookup_term(&t("(mul64 reg6 4)")).unwrap();
        let shift = eg.add_term(&t("(shl64 reg6 2)")).unwrap();
        eg.union(mul, shift).unwrap();
        let s4 = eg.add_term(&t("(s4addq reg6 1)")).unwrap();
        eg.union(goal, s4).unwrap();
        eg.rebuild().unwrap();
        // The goal class now contains add64, and s4addq nodes; the mul
        // class contains mul64 and shl64 nodes.
        let goal_ops: Vec<String> = eg
            .nodes(goal)
            .iter()
            .filter_map(|n| n.sym().map(|s| s.to_string()))
            .collect();
        assert!(goal_ops.contains(&"add64".to_owned()));
        assert!(goal_ops.contains(&"s4addq".to_owned()));
        let mul_ops: Vec<String> = eg
            .nodes(mul)
            .iter()
            .filter_map(|n| n.sym().map(|s| s.to_string()))
            .collect();
        assert!(mul_ops.contains(&"mul64".to_owned()));
        assert!(mul_ops.contains(&"shl64".to_owned()));
    }

    #[test]
    fn journal_records_new_classes_and_constants() {
        let mut eg = EGraph::new();
        let g0 = eg.generation();
        let sum = eg.add_term(&t("(add64 x 4)")).unwrap();
        assert!(eg.generation() > g0, "adding terms bumps the generation");
        let delta = eg.take_delta();
        // Every created class is journaled: x, 4, add64(x, 4).
        let touched: HashSet<ClassId> = delta.classes.iter().map(|&c| eg.find(c)).collect();
        for id in [sum, eg.lookup_term(&t("x")).unwrap()] {
            assert!(touched.contains(&eg.find(id)), "missing {id:?}");
        }
        assert_eq!(delta.constants, vec![4], "new constant values journaled");
        // Draining resets the journal; no-op lookups journal nothing.
        let g1 = eg.generation();
        eg.add_term(&t("(add64 x 4)")).unwrap(); // hashcons hit
        assert_eq!(eg.generation(), g1);
        assert!(eg.take_delta().is_empty());
    }

    #[test]
    fn journal_records_unions() {
        let mut eg = EGraph::new();
        let x = eg.add_term(&t("x")).unwrap();
        let y = eg.add_term(&t("y")).unwrap();
        eg.take_delta();
        let g0 = eg.generation();
        eg.union(x, y).unwrap();
        eg.rebuild().unwrap();
        assert!(eg.generation() > g0);
        let delta = eg.take_delta();
        let touched: HashSet<ClassId> = delta.classes.iter().map(|&c| eg.find(c)).collect();
        assert!(touched.contains(&eg.find(x)), "merged class journaled");
    }

    #[test]
    fn journal_records_congruence_merges() {
        // x = y merges f(x)/f(y) by congruence; the parent class must be
        // journaled even though union() was never called on it directly.
        let mut eg = EGraph::new();
        let fx = eg.add_term(&t("(f x)")).unwrap();
        let fy = eg.add_term(&t("(f y)")).unwrap();
        let x = eg.lookup_term(&t("x")).unwrap();
        let y = eg.lookup_term(&t("y")).unwrap();
        eg.take_delta();
        eg.union(x, y).unwrap();
        eg.rebuild().unwrap();
        let delta = eg.take_delta();
        let touched: HashSet<ClassId> = delta.classes.iter().map(|&c| eg.find(c)).collect();
        assert!(touched.contains(&eg.find(fx)));
        assert!(touched.contains(&eg.find(fy)));
    }

    #[test]
    fn journal_records_constant_folds() {
        // n = 2 folds add64(n, 1) to 3: the folded class and the new
        // constant value must both land in the journal, or a delta
        // matcher would miss matches the fold enables.
        let mut eg = EGraph::new();
        let sum = eg.add_term(&t("(add64 n 1)")).unwrap();
        let n = eg.lookup_term(&t("n")).unwrap();
        let two = eg.add_term(&Term::constant(2)).unwrap();
        eg.take_delta();
        eg.union(n, two).unwrap();
        eg.rebuild().unwrap();
        assert_eq!(eg.constant(sum), Some(3));
        let delta = eg.take_delta();
        let touched: HashSet<ClassId> = delta.classes.iter().map(|&c| eg.find(c)).collect();
        assert!(touched.contains(&eg.find(sum)), "folded class journaled");
        assert!(delta.constants.contains(&3), "folded value journaled");
    }

    #[test]
    fn op_counts_attribute_work() {
        let mut eg = EGraph::new();
        let _fx = eg.add_term(&t("(f x)")).unwrap();
        let _fy = eg.add_term(&t("(f y)")).unwrap();
        let x = eg.lookup_term(&t("x")).unwrap();
        let y = eg.lookup_term(&t("y")).unwrap();
        let before = eg.op_counts();
        assert_eq!(before.new_nodes, 4, "f(x), x, f(y), y");
        assert_eq!(before.unions, 0);
        eg.add_term(&t("(f x)")).unwrap(); // pure hashcons hits
        let hits = eg.op_counts().since(before);
        assert_eq!(hits.adds, 2);
        assert_eq!(hits.hits, 2);
        assert_eq!(hits.new_nodes, 0);
        // One asserted union; rebuild merges f(x)/f(y) by congruence.
        let before = eg.op_counts();
        eg.union(x, y).unwrap();
        eg.rebuild().unwrap();
        let merged = eg.op_counts().since(before);
        assert_eq!(merged.unions, 2);
        assert_eq!(merged.congruence_unions, 1, "only f(x)=f(y) is repair");
        assert_eq!(merged.rebuilds, 1);
        // A fold: n = 2 gives add64(n, 1) the value 3.
        let mut eg = EGraph::new();
        eg.add_term(&t("(add64 n 1)")).unwrap();
        let n = eg.lookup_term(&t("n")).unwrap();
        let two = eg.add_term(&Term::constant(2)).unwrap();
        let before = eg.op_counts();
        eg.union(n, two).unwrap();
        eg.rebuild().unwrap();
        assert_eq!(eg.op_counts().since(before).folds, 1);
    }

    #[test]
    fn dirty_cone_walks_parents_to_bounded_depth() {
        let mut eg = EGraph::new();
        let gfx = eg.add_term(&t("(g (f x))")).unwrap();
        let fx = eg.lookup_term(&t("(f x)")).unwrap();
        let x = eg.lookup_term(&t("x")).unwrap();
        eg.rebuild().unwrap();
        let cone0 = eg.dirty_cone(&[x], 0);
        assert_eq!(cone0, [eg.find(x)].into_iter().collect());
        let cone1 = eg.dirty_cone(&[x], 1);
        assert!(cone1.contains(&eg.find(fx)) && !cone1.contains(&eg.find(gfx)));
        let cone2 = eg.dirty_cone(&[x], 2);
        for id in [x, fx, gfx] {
            assert!(cone2.contains(&eg.find(id)));
        }
    }

    #[test]
    fn dirty_cone_follows_merged_parent_edges() {
        // After f(x)'s class merges with m's, parents recorded against
        // either pre-merge class must still pull h(m) into x's cone.
        let mut eg = EGraph::new();
        let fx = eg.add_term(&t("(f x)")).unwrap();
        let hm = eg.add_term(&t("(h m)")).unwrap();
        let m = eg.lookup_term(&t("m")).unwrap();
        let x = eg.lookup_term(&t("x")).unwrap();
        eg.union(fx, m).unwrap();
        eg.rebuild().unwrap();
        let cone = eg.dirty_cone(&[x], 2);
        assert!(cone.contains(&eg.find(hm)), "cone: {cone:?}");
    }
}
