//! Core E-graph data structure: hashcons, union-find, congruence
//! closure, analyses, distinctions, and clauses.

use std::collections::{HashMap, HashSet};
use std::fmt;

use denali_term::{ops, Op, Symbol, Term};

use crate::ematch::Subst;

/// Identifier of an equivalence class.
///
/// Class ids are stable names for e-nodes' classes; after unions several
/// ids may denote the same class. Use [`EGraph::find`] to canonicalize.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(u32);

impl ClassId {
    /// Dense index (canonical only after [`EGraph::find`]).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// An e-node: an operator applied to equivalence classes.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ENode {
    /// Head operator (symbol or constant; never a pattern variable).
    pub op: Op,
    /// Argument classes.
    pub children: Vec<ClassId>,
}

impl ENode {
    /// Creates an e-node.
    pub fn new(op: Op, children: Vec<ClassId>) -> ENode {
        ENode { op, children }
    }

    /// The head symbol, if the op is a symbol.
    pub fn sym(&self) -> Option<Symbol> {
        self.op.as_sym()
    }
}

/// Identifier of an e-node in the arena.
///
/// Node ids are dense indices into the append-only node arena: the id
/// is assigned at [`EGraph::add_node`] time and never moves or goes
/// away (merged-away duplicates simply stop being referenced by class
/// node lists). Resolve one with [`EGraph::node_op`] /
/// [`EGraph::node_children`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Dense index into the node arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an interned child slice in the shared pool.
///
/// Slices are content-addressed: two nodes whose (canonicalized) child
/// lists are identical share one `SliceId`, so slice-id equality is
/// structural equality of child lists. This is what lets the hashcons
/// memo key on the compact `(Op, SliceId)` form.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SliceId(u32);

impl SliceId {
    /// Dense index into the slice pool's span table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SliceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// FNV-1a over the raw class ids of a child list, used to bucket the
/// slice pool's dedup index. Collisions are resolved by content
/// comparison, so the hash only needs to be fast and deterministic.
fn hash_children(children: &[ClassId]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for c in children {
        h ^= u64::from(c.0);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Shared, append-only pool of interned child lists. Each distinct
/// (by content) child list is stored once in `data` and named by a
/// `SliceId` indexing the `(offset, len)` span table.
#[derive(Clone, Default, Debug)]
struct SlicePool {
    /// Flat storage for every interned child list, back to back.
    data: Vec<ClassId>,
    /// `(offset, len)` into `data`, indexed by `SliceId`.
    spans: Vec<(u32, u32)>,
    /// Content hash → slice ids with that hash (collision bucket).
    dedup: HashMap<u64, Vec<SliceId>>,
}

impl SlicePool {
    fn get(&self, id: SliceId) -> &[ClassId] {
        let (off, len) = self.spans[id.index()];
        &self.data[off as usize..off as usize + len as usize]
    }

    /// Read-only content lookup: the id of an already-interned list.
    fn lookup(&self, children: &[ClassId]) -> Option<SliceId> {
        let bucket = self.dedup.get(&hash_children(children))?;
        bucket.iter().copied().find(|&id| self.get(id) == children)
    }

    /// Payload bytes held by the pool's backing storage (flat data plus
    /// span table; lengths, not allocator capacities).
    fn footprint_bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<ClassId>()
            + self.spans.len() * std::mem::size_of::<(u32, u32)>()) as u64
    }

    /// Interns a child list, returning the shared id for its content.
    fn intern(&mut self, children: &[ClassId]) -> SliceId {
        let h = hash_children(children);
        if let Some(bucket) = self.dedup.get(&h) {
            if let Some(&id) = bucket.iter().find(|&&id| self.get(id) == children) {
                return id;
            }
        }
        let off = u32::try_from(self.data.len()).expect("slice pool data overflow");
        let len = u32::try_from(children.len()).expect("child list too long");
        self.data.extend_from_slice(children);
        let id = SliceId(u32::try_from(self.spans.len()).expect("slice pool span overflow"));
        self.spans.push((off, len));
        self.dedup.entry(h).or_default().push(id);
        id
    }
}

/// A literal for recorded clauses: an equality or distinction between
/// classes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EqLiteral {
    /// The two classes are equal.
    Eq(ClassId, ClassId),
    /// The two classes are distinct (uncombinable).
    Ne(ClassId, ClassId),
}

/// What kind of failure an [`EGraphError`] reports.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EGraphErrorKind {
    /// The asserted facts are contradictory (e.g. a union of classes
    /// constrained to be distinct, or two different constants in one
    /// class). In Denali this indicates an unsound axiom set.
    Contradiction,
    /// The class-id budget was exhausted: either the capacity installed
    /// with [`EGraph::set_class_capacity`] or the representation limit
    /// (class ids are `u32`). A pathological input, not a bug — callers
    /// reject the program cleanly instead of panicking.
    TooManyClasses,
}

/// Error raised when the asserted facts are contradictory (an unsound
/// axiom set) or a resource budget is exhausted — see
/// [`EGraphErrorKind`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EGraphError {
    message: String,
    kind: EGraphErrorKind,
}

impl EGraphError {
    fn new(message: impl Into<String>) -> EGraphError {
        EGraphError {
            message: message.into(),
            kind: EGraphErrorKind::Contradiction,
        }
    }

    /// Creates an error with a caller-supplied message (used by layers
    /// that wrap e-graph contradictions with more context).
    pub fn from_message(message: impl Into<String>) -> EGraphError {
        EGraphError::new(message)
    }

    /// Creates a [`EGraphErrorKind::TooManyClasses`] error for the
    /// given capacity.
    pub fn too_many_classes(capacity: usize) -> EGraphError {
        EGraphError {
            message: format!("e-graph class budget exhausted ({capacity} classes)"),
            kind: EGraphErrorKind::TooManyClasses,
        }
    }

    /// Which kind of failure this is.
    pub fn kind(&self) -> EGraphErrorKind {
        self.kind
    }

    /// True if this error reports an exhausted class budget.
    pub fn is_too_many_classes(&self) -> bool {
        self.kind == EGraphErrorKind::TooManyClasses
    }
}

impl fmt::Display for EGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for EGraphError {}

#[derive(Clone, Default, Debug)]
struct EClass {
    /// Arena ids of the e-nodes in this class (first-seen order;
    /// congruent duplicates are dropped by rebuild's dedupe pass).
    nodes: Vec<NodeId>,
    /// Parent arena nodes and the class each parent node belongs(ed)
    /// to. Stored class ids may be stale; readers canonicalize.
    parents: Vec<(NodeId, ClassId)>,
    /// Known constant value of every term in this class.
    constant: Option<u64>,
}

/// The changes recorded since the last [`EGraph::take_delta`]: which
/// classes were touched (created, merged, given new nodes, or folded to
/// a constant) and which constant values first appeared.
///
/// The class list may contain stale (merged-away) ids and duplicates;
/// consumers canonicalize through [`EGraph::find`] — usually via
/// [`EGraph::dirty_cone`], which also propagates dirtiness upward
/// through the parent index.
#[derive(Clone, Default, Debug)]
pub struct Delta {
    /// Ids of classes touched since the last drain (possibly stale).
    pub classes: Vec<ClassId>,
    /// Constant values that were first registered since the last drain.
    pub constants: Vec<u64>,
}

impl Delta {
    /// True if nothing was journaled.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty() && self.constants.is_empty()
    }

    /// Folds another delta into this one (preserving event order).
    pub fn absorb(&mut self, other: Delta) {
        self.classes.extend(other.classes);
        self.constants.extend(other.constants);
    }
}

/// Monotone counters over the e-graph's mutating operations, for
/// observability: how much work saturation actually did, round by
/// round. Snapshot with [`EGraph::op_counts`] and subtract snapshots
/// with [`OpCounts::since`] to get per-round deltas.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct OpCounts {
    /// [`EGraph::add_node`] calls (including hashcons hits).
    pub adds: u64,
    /// Adds answered by the hashcons table (no new node).
    pub hits: u64,
    /// Adds that created a new e-node (and class).
    pub new_nodes: u64,
    /// Class merges actually performed (a union of two distinct roots).
    pub unions: u64,
    /// The subset of `unions` performed by congruence repair inside
    /// [`EGraph::rebuild`] (as opposed to asserted by the caller).
    pub congruence_unions: u64,
    /// Classes folded to a constant value after creation.
    pub folds: u64,
    /// [`EGraph::rebuild`] calls.
    pub rebuilds: u64,
}

impl OpCounts {
    /// Field-wise difference from an earlier snapshot.
    pub fn since(self, before: OpCounts) -> OpCounts {
        OpCounts {
            adds: self.adds - before.adds,
            hits: self.hits - before.hits,
            new_nodes: self.new_nodes - before.new_nodes,
            unions: self.unions - before.unions,
            congruence_unions: self.congruence_unions - before.congruence_unions,
            folds: self.folds - before.folds,
            rebuilds: self.rebuilds - before.rebuilds,
        }
    }
}

/// Memory accounting for the arena/SoA e-graph storage, from
/// [`EGraph::memory_stats`].
///
/// All byte counts are payload bytes (lengths × element sizes, not
/// allocator capacities), so they are deterministic for a given graph
/// shape and safe to surface in traces. `legacy_bytes` models what the
/// pre-arena layout — owned `ENode` clones in class node lists, parent
/// entries, and memo keys, each with its own heap child vector — would
/// need for the same graph, measured from the same shape.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct MemoryStats {
    /// Arena e-nodes (one per canonical node ever created).
    pub nodes: u64,
    /// Live equivalence classes.
    pub classes: u64,
    /// Bytes in the node arena (`Vec<Op>` + `Vec<SliceId>`).
    pub arena_bytes: u64,
    /// Bytes in the interned child-slice pool (flat data + span table).
    pub slice_bytes: u64,
    /// Distinct interned child slices.
    pub slice_entries: u64,
    /// Child-list references into the pool (one per arena node).
    pub slice_refs: u64,
    /// Bytes the referenced child lists would occupy if every node
    /// owned its own copy (the numerator of [`MemoryStats::dedup_ratio`]).
    pub shared_child_bytes: u64,
    /// Bytes in per-class node lists and parent indexes.
    pub class_bytes: u64,
    /// Bytes in the hashcons memo (key + value payload).
    pub memo_bytes: u64,
    /// Total payload bytes across arena, pool, classes, and memo.
    pub total_bytes: u64,
    /// Payload bytes the pre-arena layout would need for this graph.
    pub legacy_bytes: u64,
    /// Cumulative payload bytes reclaimed from the slice pool by
    /// generational sweeps (pre-canonical garbage compacted away at
    /// rebuild time). Monotone over the graph's lifetime; not part of
    /// `total_bytes`, which measures what is held *now*.
    pub reclaimed_bytes: u64,
}

impl MemoryStats {
    /// Payload bytes per arena node in the current layout.
    pub fn bytes_per_node(&self) -> f64 {
        if self.nodes == 0 {
            return 0.0;
        }
        self.total_bytes as f64 / self.nodes as f64
    }

    /// Payload bytes per node the pre-arena layout would need.
    pub fn legacy_bytes_per_node(&self) -> f64 {
        if self.nodes == 0 {
            return 0.0;
        }
        self.legacy_bytes as f64 / self.nodes as f64
    }

    /// How much interning shares child lists: slice references per
    /// distinct interned slice (≥ 1; higher is more sharing).
    pub fn dedup_ratio(&self) -> f64 {
        if self.slice_entries == 0 {
            return 1.0;
        }
        self.slice_refs as f64 / self.slice_entries as f64
    }

    /// Bytes-per-node reduction versus the pre-arena layout (×).
    pub fn reduction(&self) -> f64 {
        if self.total_bytes == 0 {
            return 1.0;
        }
        self.legacy_bytes as f64 / self.total_bytes as f64
    }
}

/// The E-graph. See the [crate docs](crate) for an overview and example.
#[derive(Clone, Default, Debug)]
pub struct EGraph {
    uf: Vec<u32>,
    classes: HashMap<ClassId, EClass>,
    /// Node arena, structure-of-arrays: `node_ops[i]` and
    /// `node_slices[i]` describe the e-node `NodeId(i)`. Append-only;
    /// `node_slices` entries are re-pointed at canonical slices during
    /// congruence repair (the op never changes).
    node_ops: Vec<Op>,
    node_slices: Vec<SliceId>,
    /// Interned child lists shared by arena nodes and memo keys.
    pool: SlicePool,
    /// Hashcons memo on the compact interned form. Slice interning is
    /// content-addressed, so `(Op, SliceId)` equality is structural
    /// node equality and no owned key is ever built.
    memo: HashMap<(Op, SliceId), ClassId>,
    /// Scratch buffer reused by canonicalization in `&mut self` paths,
    /// so a hashcons hit allocates nothing.
    scratch: Vec<ClassId>,
    /// Canonical ids of constant classes, for eager folding.
    constants: HashMap<u64, ClassId>,
    /// Classes whose parents need congruence repair.
    dirty: Vec<ClassId>,
    /// Canonicalized (smaller, larger) root pairs that must never merge.
    uncombinable: HashSet<(ClassId, ClassId)>,
    /// Recorded clauses awaiting literal deletion / unit assertion.
    clauses: Vec<Vec<EqLiteral>>,
    /// Operator index: symbol → classes that (at insertion time) held a
    /// node with that head. Entries may be stale; readers canonicalize.
    op_index: HashMap<Symbol, Vec<ClassId>>,
    /// Monotone mutation counter: bumped on every journaled change, so
    /// readers can cheaply detect "something happened since I looked".
    generation: u64,
    /// Change journal since the last [`EGraph::take_delta`] (always on;
    /// the cost is one `Vec` push per mutation, proportional to work
    /// already being done).
    journal: Delta,
    /// Operation counters (always on; a few integer bumps per op).
    counts: OpCounts,
    /// True while [`EGraph::rebuild`] runs, so unions performed during
    /// repair are attributed to congruence in [`OpCounts`].
    repairing: bool,
    /// Maximum number of class ids ever allocated (`0` = unlimited, the
    /// default). Exceeding it turns [`EGraph::add_node`] into a clean
    /// [`EGraphErrorKind::TooManyClasses`] error instead of unbounded
    /// growth.
    class_capacity: usize,
    /// Cumulative payload bytes reclaimed by generational sweeps of the
    /// slice pool (see [`EGraph::sweep_slices`]).
    reclaimed_bytes: u64,
}

// The matcher freezes the e-graph and e-matches axioms against it from
// multiple threads; every read accessor takes `&self`, and this pins the
// auto-trait obligations so a future non-Sync field (e.g. an interior-
// mutability cache) fails to compile here rather than in the matcher.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EGraph>();
};

impl EGraph {
    /// Creates an empty e-graph.
    pub fn new() -> EGraph {
        EGraph::default()
    }

    /// Number of (canonical) e-nodes ever added.
    pub fn num_nodes(&self) -> usize {
        self.node_ops.len()
    }

    /// Caps the number of class ids this e-graph may ever allocate
    /// (`0` = unlimited). Once the cap is reached, [`EGraph::add_node`]
    /// (and everything built on it) fails with a
    /// [`EGraphErrorKind::TooManyClasses`] error rather than growing —
    /// or, at the `u32` representation limit, panicking.
    pub fn set_class_capacity(&mut self, capacity: usize) {
        self.class_capacity = capacity;
    }

    /// Number of live equivalence classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// The mutation generation: a monotone counter bumped on every
    /// journaled change (class created, classes merged, constant
    /// folded). Equal generations imply the e-graph has not changed.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Snapshot of the operation counters (see [`OpCounts`]).
    pub fn op_counts(&self) -> OpCounts {
        self.counts
    }

    /// Drains and returns the change journal: every class touched and
    /// every constant value first registered since the previous drain
    /// (or since creation, for the first call). Pair with
    /// [`EGraph::dirty_cone`] to seed delta-driven e-matching.
    pub fn take_delta(&mut self) -> Delta {
        std::mem::take(&mut self.journal)
    }

    fn journal_class(&mut self, id: ClassId) {
        self.generation += 1;
        self.journal.classes.push(id);
    }

    /// Canonical representative of `id`'s class.
    pub fn find(&self, id: ClassId) -> ClassId {
        let mut i = id.0;
        while self.uf[i as usize] != i {
            i = self.uf[i as usize];
        }
        ClassId(i)
    }

    fn find_compress(&mut self, id: ClassId) -> ClassId {
        let root = self.find(id);
        let mut i = id.0;
        while self.uf[i as usize] != root.0 {
            let next = self.uf[i as usize];
            self.uf[i as usize] = root.0;
            i = next;
        }
        root
    }

    /// Canonicalizes `children` into the shared scratch buffer. The
    /// caller takes ownership of the buffer and must hand it back by
    /// assigning `self.scratch` when done (so the allocation is reused
    /// across calls instead of freed).
    fn canonical_scratch(&mut self, children: &[ClassId]) -> Vec<ClassId> {
        let mut buf = std::mem::take(&mut self.scratch);
        buf.clear();
        buf.extend(children.iter().map(|&c| self.find(c)));
        buf
    }

    /// Re-canonicalizes an arena node's child slice in place, interning
    /// the canonical content and re-pointing `node_slices[id]` at it.
    /// Returns the canonical slice id.
    fn canonicalize_slice(&mut self, id: NodeId) -> SliceId {
        let mut buf = std::mem::take(&mut self.scratch);
        buf.clear();
        buf.extend(
            self.pool
                .get(self.node_slices[id.index()])
                .iter()
                .map(|&c| self.find(c)),
        );
        let slice = self.pool.intern(&buf);
        self.scratch = buf;
        self.node_slices[id.index()] = slice;
        slice
    }

    /// Adds an e-node (children given as classes), returning its class.
    ///
    /// Congruent nodes are hash-consed to the same class. Constant
    /// folding is eager: a node whose children all have known constant
    /// values is unified with the literal constant's class.
    ///
    /// # Errors
    ///
    /// Fails with [`EGraphErrorKind::TooManyClasses`] when allocating a
    /// new class would exceed [`EGraph::set_class_capacity`] (or the
    /// `u32` class-id representation limit). Hashcons hits never fail —
    /// only genuinely new nodes consume capacity.
    pub fn add_node(&mut self, op: Op, children: Vec<ClassId>) -> Result<ClassId, EGraphError> {
        self.counts.adds += 1;
        let buf = self.canonical_scratch(&children);
        // Hit path: slice interning is content-addressed, so if the
        // canonical child list is interned and `(op, slice)` is
        // memoized, the node already exists. Nothing is allocated.
        if let Some(slice) = self.pool.lookup(&buf) {
            if let Some(&existing) = self.memo.get(&(op, slice)) {
                self.counts.hits += 1;
                self.scratch = buf;
                return Ok(self.find(existing));
            }
        }
        if self.class_capacity != 0 && self.uf.len() >= self.class_capacity {
            self.scratch = buf;
            return Err(EGraphError::too_many_classes(self.class_capacity));
        }
        self.counts.new_nodes += 1;
        let id = match u32::try_from(self.uf.len()) {
            Ok(raw) => ClassId(raw),
            Err(_) => {
                self.scratch = buf;
                return Err(EGraphError::too_many_classes(u32::MAX as usize));
            }
        };
        self.uf.push(id.0);
        let slice = self.pool.intern(&buf);
        let nid = NodeId(u32::try_from(self.node_ops.len()).expect("arena bounded by class ids"));
        self.node_ops.push(op);
        self.node_slices.push(slice);
        let constant = self.node_constant(op, &buf);
        for &child in &buf {
            self.classes
                .get_mut(&child)
                .expect("canonical child class")
                .parents
                .push((nid, id));
        }
        self.scratch = buf;
        self.classes.insert(
            id,
            EClass {
                nodes: vec![nid],
                parents: Vec::new(),
                constant,
            },
        );
        if let Op::Sym(sym) = op {
            self.op_index.entry(sym).or_default().push(id);
        }
        self.memo.insert((op, slice), id);
        self.journal_class(id);
        // Register / fold constants.
        if let Some(value) = constant {
            match self.constants.get(&value) {
                None => {
                    self.constants.insert(value, id);
                    self.journal.constants.push(value);
                    // Make sure the literal constant node itself exists so
                    // the class always contains `Const(value)`.
                    if op != Op::Const(value) {
                        let lit = self.add_node(Op::Const(value), Vec::new())?;
                        self.union(lit, id).expect("fresh constant cannot conflict");
                    }
                }
                Some(&existing) => {
                    let existing = self.find(existing);
                    self.union(existing, id)
                        .expect("equal constants cannot conflict");
                }
            }
        }
        Ok(self.find(id))
    }

    fn node_constant(&self, op: Op, children: &[ClassId]) -> Option<u64> {
        match op {
            Op::Const(c) => Some(c),
            Op::Var(_) => None,
            Op::Sym(sym) => {
                if children.is_empty() {
                    return None;
                }
                let args: Option<Vec<u64>> = children
                    .iter()
                    .map(|&c| self.classes.get(&self.find(c)).and_then(|cl| cl.constant))
                    .collect();
                ops::eval(sym, &args?)
            }
        }
    }

    /// Adds a ground term, returning its class.
    ///
    /// # Errors
    ///
    /// Fails if the term contains pattern variables.
    pub fn add_term(&mut self, term: &Term) -> Result<ClassId, EGraphError> {
        match term.op() {
            Op::Var(v) => Err(EGraphError::new(format!(
                "cannot add pattern variable ?{v} to the e-graph"
            ))),
            op => {
                let children = term
                    .args()
                    .iter()
                    .map(|a| self.add_term(a))
                    .collect::<Result<Vec<_>, _>>()?;
                self.add_node(op, children)
            }
        }
    }

    /// Instantiates a pattern term: variables are looked up in `subst`
    /// (mapping variable symbols to classes) and the rest is added.
    ///
    /// # Errors
    ///
    /// Fails if a pattern variable is missing from `subst`.
    pub fn add_instantiation(
        &mut self,
        pattern: &Term,
        subst: &Subst,
    ) -> Result<ClassId, EGraphError> {
        match pattern.op() {
            Op::Var(v) => subst
                .get(v)
                .map(|c| self.find(c))
                .ok_or_else(|| EGraphError::new(format!("unbound pattern variable ?{v}"))),
            op => {
                let children = pattern
                    .args()
                    .iter()
                    .map(|a| self.add_instantiation(a, subst))
                    .collect::<Result<Vec<_>, _>>()?;
                self.add_node(op, children)
            }
        }
    }

    /// Looks up the class of a ground term without inserting anything.
    pub fn lookup_term(&self, term: &Term) -> Option<ClassId> {
        let children = term
            .args()
            .iter()
            .map(|a| self.lookup_term(a))
            .collect::<Option<Vec<_>>>()?;
        // The recursive lookups return canonical ids, so the child list
        // is already canonical; a memoized node must have its content
        // interned, so a pool miss is a memo miss.
        let slice = self.pool.lookup(&children)?;
        self.memo.get(&(term.op(), slice)).map(|&c| self.find(c))
    }

    /// Merges two classes.
    ///
    /// Returns the surviving root. Congruence repair is deferred to
    /// [`EGraph::rebuild`].
    ///
    /// # Errors
    ///
    /// Fails if the classes are constrained to be distinct or carry
    /// different constant values (contradiction — an unsound axiom).
    pub fn union(&mut self, a: ClassId, b: ClassId) -> Result<ClassId, EGraphError> {
        let a = self.find_compress(a);
        let b = self.find_compress(b);
        if a == b {
            return Ok(a);
        }
        if self.uncombinable.contains(&ordered(a, b)) {
            return Err(EGraphError::new(format!(
                "contradiction: classes {a} and {b} are constrained to be distinct"
            )));
        }
        self.counts.unions += 1;
        if self.repairing {
            self.counts.congruence_unions += 1;
        }
        // Union by size (number of nodes).
        let (root, other) = if self.classes[&a].nodes.len() >= self.classes[&b].nodes.len() {
            (a, b)
        } else {
            (b, a)
        };
        let merged = self.classes.remove(&other).expect("live class");
        self.uf[other.0 as usize] = root.0;
        let root_class = self.classes.get_mut(&root).expect("live class");
        root_class.nodes.extend(merged.nodes);
        root_class.parents.extend(merged.parents);
        let root_const = root_class.constant;
        let new_const = match (root_const, merged.constant) {
            (Some(x), Some(y)) if x != y => {
                return Err(EGraphError::new(format!(
                    "contradiction: class holds two constants {x} and {y}"
                )));
            }
            (x, y) => x.or(y),
        };
        self.classes.get_mut(&root).expect("live class").constant = new_const;
        if let Some(v) = new_const {
            if let std::collections::hash_map::Entry::Vacant(e) = self.constants.entry(v) {
                e.insert(root);
                self.journal.constants.push(v);
            }
        }
        // Re-point uncombinable pairs involving `other` at `root`.
        let stale: Vec<(ClassId, ClassId)> = self
            .uncombinable
            .iter()
            .filter(|&&(x, y)| x == other || y == other)
            .copied()
            .collect();
        for pair in stale {
            self.uncombinable.remove(&pair);
            let (x, y) = pair;
            let x = if x == other { root } else { x };
            let y = if y == other { root } else { y };
            self.uncombinable.insert(ordered(x, y));
        }
        self.dirty.push(root);
        self.journal_class(root);
        Ok(root)
    }

    /// Constrains two classes to be forever distinct (a paper
    /// "distinction", `T ≠ U`).
    ///
    /// # Errors
    ///
    /// Fails if the classes are already equal.
    pub fn assert_distinct(&mut self, a: ClassId, b: ClassId) -> Result<(), EGraphError> {
        let a = self.find(a);
        let b = self.find(b);
        if a == b {
            return Err(EGraphError::new(format!(
                "contradiction: distinction asserted within one class {a}"
            )));
        }
        self.uncombinable.insert(ordered(a, b));
        Ok(())
    }

    /// Records a clause (disjunction of literals). Untenable literals are
    /// deleted during [`EGraph::rebuild`]; a surviving unit literal is
    /// asserted (§5 of the paper).
    pub fn add_clause(&mut self, literals: Vec<EqLiteral>) {
        self.clauses.push(literals);
    }

    /// The known constant value of a class, if any.
    pub fn constant(&self, id: ClassId) -> Option<u64> {
        self.classes.get(&self.find(id)).and_then(|c| c.constant)
    }

    /// The canonical class of the literal constant `value`, if present.
    pub fn constant_class(&self, value: u64) -> Option<ClassId> {
        self.constants.get(&value).map(|&c| self.find(c))
    }

    /// True if the two classes are provably different values: distinct
    /// constants, an asserted distinction, or a shared base pointer with
    /// different constant offsets (the analysis behind the paper's
    /// `p ≠ p + 8` step).
    pub fn provably_distinct(&self, a: ClassId, b: ClassId) -> bool {
        let a = self.find(a);
        let b = self.find(b);
        if a == b {
            return false;
        }
        if let (Some(x), Some(y)) = (self.constant(a), self.constant(b)) {
            return x != y;
        }
        if self.uncombinable.contains(&ordered(a, b)) {
            return true;
        }
        // Base+offset analysis.
        for (base_a, off_a) in self.base_offsets(a) {
            for (base_b, off_b) in self.base_offsets(b) {
                if base_a == base_b && off_a != off_b {
                    return true;
                }
            }
        }
        false
    }

    /// All `(base_class, offset)` decompositions of a class: the class
    /// itself at offset 0, plus every `add64/addq/sub64/subq(base, const)`
    /// node in it. Used by the code generator to fold address arithmetic
    /// into load/store displacement fields.
    pub fn address_decompositions(&self, id: ClassId) -> Vec<(ClassId, u64)> {
        self.base_offsets(id)
    }

    fn base_offsets(&self, id: ClassId) -> Vec<(ClassId, u64)> {
        let id = self.find(id);
        let mut out = vec![(id, 0u64)];
        let Some(class) = self.classes.get(&id) else {
            return out;
        };
        for &nid in &class.nodes {
            let Some(sym) = self.node_ops[nid.index()].as_sym() else {
                continue;
            };
            let name = sym.as_str();
            let negate = match name {
                "add64" | "addq" => false,
                "sub64" | "subq" => true,
                _ => continue,
            };
            let children = self.pool.get(self.node_slices[nid.index()]);
            if children.len() != 2 {
                continue;
            }
            let lhs = self.find(children[0]);
            let rhs = self.find(children[1]);
            if let Some(c) = self.constant(rhs) {
                let off = if negate { c.wrapping_neg() } else { c };
                out.push((lhs, off));
            }
            if !negate {
                if let Some(c) = self.constant(lhs) {
                    out.push((rhs, c));
                }
            }
        }
        out
    }

    /// Restores the congruence invariant, folds newly constant parents,
    /// and processes recorded clauses, repeating until a fixpoint.
    ///
    /// # Errors
    ///
    /// Propagates contradictions discovered while merging.
    pub fn rebuild(&mut self) -> Result<(), EGraphError> {
        self.counts.rebuilds += 1;
        self.repairing = true;
        let result = self.rebuild_loop();
        self.repairing = false;
        if result.is_ok() {
            self.sweep_slices();
        }
        result
    }

    /// Generational sweep of the slice pool. Congruence repair re-points
    /// arena nodes at freshly interned canonical slices, so after heavy
    /// merging the span table accumulates pre-canonical garbage nobody
    /// references. When at least half the table is dead (and it is big
    /// enough to bother), re-intern every live slice into a fresh pool
    /// and remap the arena and memo through it. Content is preserved
    /// verbatim — only the ids and the backing storage change — and the
    /// re-intern order (arena order, then memo-only ids numerically) is
    /// deterministic, so the new numbering is too.
    fn sweep_slices(&mut self) {
        const SWEEP_MIN_SPANS: usize = 32;
        let total = self.pool.spans.len();
        if total < SWEEP_MIN_SPANS {
            return;
        }
        // Memo entries keyed by non-canonical content are unreachable:
        // every lookup path canonicalizes children first, and a class id
        // that lost root status never regains it, so that content can
        // never be asked for again. Dropping them here both frees the
        // memo and unpins their slices.
        let stale: Vec<(Op, SliceId)> = self
            .memo
            .keys()
            .filter(|&&(_, s)| self.pool.get(s).iter().any(|&c| self.find(c) != c))
            .copied()
            .collect();
        for key in stale {
            self.memo.remove(&key);
        }
        let mut live = vec![false; total];
        for &s in &self.node_slices {
            live[s.index()] = true;
        }
        for &(_, s) in self.memo.keys() {
            live[s.index()] = true;
        }
        let dead = live.iter().filter(|&&l| !l).count();
        if dead * 2 < total {
            return;
        }
        let before = self.pool.footprint_bytes();
        let mut fresh = SlicePool::default();
        let mut remap: Vec<Option<SliceId>> = vec![None; total];
        for i in 0..self.node_slices.len() {
            let old = self.node_slices[i];
            let new = *remap[old.index()].get_or_insert_with(|| fresh.intern(self.pool.get(old)));
            self.node_slices[i] = new;
        }
        // Memo keys not shared with any arena node (stale hashcons
        // entries from earlier repairs) are kept — the sweep compacts
        // storage, it never changes lookup behavior. Their re-intern
        // order is fixed numerically so ids stay deterministic.
        let mut memo_only: Vec<SliceId> = self
            .memo
            .keys()
            .map(|&(_, s)| s)
            .filter(|s| remap[s.index()].is_none())
            .collect();
        memo_only.sort_unstable_by_key(|s| s.0);
        memo_only.dedup();
        for old in memo_only {
            remap[old.index()] = Some(fresh.intern(self.pool.get(old)));
        }
        let memo = std::mem::take(&mut self.memo);
        self.memo = memo
            .into_iter()
            .map(|((op, s), c)| ((op, remap[s.index()].expect("live memo slice")), c))
            .collect();
        self.pool = fresh;
        self.reclaimed_bytes += before - self.pool.footprint_bytes();
    }

    fn rebuild_loop(&mut self) -> Result<(), EGraphError> {
        loop {
            while let Some(dirty) = self.dirty.pop() {
                let dirty = self.find(dirty);
                let parents = {
                    let Some(class) = self.classes.get_mut(&dirty) else {
                        continue;
                    };
                    std::mem::take(&mut class.parents)
                };
                // `new_parents` must preserve first-seen order: it is
                // written back to `class.parents`, whose order decides
                // the union order on the *next* repair of this class.
                // A plain HashMap here leaks hash-seed nondeterminism
                // into node-list order.
                let mut new_parents: Vec<(NodeId, ClassId)> = Vec::new();
                let mut parent_index: HashMap<(Op, SliceId), usize> = HashMap::new();
                for (nid, node_class) in parents {
                    let op = self.node_ops[nid.index()];
                    // The memo entry for this node (if this node's key
                    // still owns one) is keyed by its current slice:
                    // every memo insert below re-points the slice first.
                    self.memo.remove(&(op, self.node_slices[nid.index()]));
                    let key = (op, self.canonicalize_slice(nid));
                    let node_class = self.find(node_class);
                    if let Some(&i) = parent_index.get(&key) {
                        self.union(new_parents[i].1, node_class)?;
                    }
                    let node_class = self.find(node_class);
                    if let Some(&memo_class) = self.memo.get(&key) {
                        let memo_class = self.find(memo_class);
                        if memo_class != node_class {
                            self.union(memo_class, node_class)?;
                        }
                    }
                    let node_class = self.find(node_class);
                    self.memo.insert(key, node_class);
                    match parent_index.get(&key) {
                        Some(&i) => new_parents[i].1 = node_class,
                        None => {
                            parent_index.insert(key, new_parents.len());
                            new_parents.push((nid, node_class));
                        }
                    }
                    // Constant propagation: the child's merge may have
                    // given this parent a constant value.
                    self.try_fold_parent(dirty, node_class)?;
                }
                let dirty = self.find(dirty);
                if let Some(class) = self.classes.get_mut(&dirty) {
                    class.parents.extend(new_parents);
                }
            }
            // Canonicalize the arena slices and dedupe the node lists:
            // after this pass every stored slice is canonical and no
            // class lists two nodes with the same `(op, slice)` form.
            // (Interning is content-addressed, so the set of slices
            // created here does not depend on the iteration order of
            // the class map.)
            let ids: Vec<ClassId> = self.classes.keys().copied().collect();
            for id in ids {
                let Some(class) = self.classes.get(&id) else {
                    continue;
                };
                let node_ids = class.nodes.clone();
                let mut seen = HashSet::new();
                let mut deduped: Vec<NodeId> = Vec::with_capacity(node_ids.len());
                for nid in node_ids {
                    let key = (self.node_ops[nid.index()], self.canonicalize_slice(nid));
                    if seen.insert(key) {
                        deduped.push(nid);
                    }
                }
                self.classes.get_mut(&id).expect("live class").nodes = deduped;
            }
            if !self.process_clauses()? && self.dirty.is_empty() {
                return Ok(());
            }
        }
    }

    fn try_fold_parent(
        &mut self,
        _child: ClassId,
        parent_class: ClassId,
    ) -> Result<(), EGraphError> {
        let parent_class = self.find(parent_class);
        if self.constant(parent_class).is_some() {
            return Ok(());
        }
        let nodes: Vec<NodeId> = match self.classes.get(&parent_class) {
            Some(c) => c.nodes.clone(),
            None => return Ok(()),
        };
        for nid in nodes {
            let op = self.node_ops[nid.index()];
            let value = self.node_constant(op, self.pool.get(self.node_slices[nid.index()]));
            if let Some(value) = value {
                // Record the constant and unify with the literal's class.
                self.counts.folds += 1;
                let parent_class = self.find(parent_class);
                self.classes
                    .get_mut(&parent_class)
                    .expect("live class")
                    .constant = Some(value);
                // The class now matches constant patterns it did not
                // match before — journal it even though the union below
                // usually covers it.
                self.journal_class(parent_class);
                let lit = self.add_node(Op::Const(value), Vec::new())?;
                let lit = self.find(lit);
                let parent_class = self.find(parent_class);
                if lit != parent_class {
                    self.union(lit, parent_class)?;
                }
                return Ok(());
            }
        }
        Ok(())
    }

    /// One pass of clause processing. Returns true if any assertion was
    /// made (requiring another rebuild round).
    fn process_clauses(&mut self) -> Result<bool, EGraphError> {
        let mut changed = false;
        let mut remaining = Vec::new();
        let clauses = std::mem::take(&mut self.clauses);
        for clause in clauses {
            let mut satisfied = false;
            let mut live = Vec::new();
            for lit in clause {
                match lit {
                    EqLiteral::Eq(a, b) => {
                        if self.find(a) == self.find(b) {
                            satisfied = true;
                            break;
                        }
                        if !self.provably_distinct(a, b) {
                            live.push(lit); // tenable
                        }
                    }
                    EqLiteral::Ne(a, b) => {
                        if self.provably_distinct(a, b) {
                            satisfied = true;
                            break;
                        }
                        if self.find(a) != self.find(b) {
                            live.push(lit);
                        }
                    }
                }
            }
            if satisfied {
                continue;
            }
            match live.len() {
                0 => {
                    return Err(EGraphError::new(
                        "contradiction: all literals of a recorded clause are untenable",
                    ));
                }
                1 => {
                    match live[0] {
                        EqLiteral::Eq(a, b) => {
                            self.union(a, b)?;
                        }
                        EqLiteral::Ne(a, b) => {
                            self.assert_distinct(a, b)?;
                        }
                    }
                    changed = true;
                }
                _ => remaining.push(live),
            }
        }
        self.clauses.extend(remaining);
        Ok(changed)
    }

    /// Canonical ids of the classes that contain at least one node with
    /// head operator `sym`. This is the matcher's top-level index: a
    /// pattern `(f ...)` can only match inside these classes.
    pub fn classes_with_op(&self, sym: Symbol) -> Vec<ClassId> {
        let Some(ids) = self.op_index.get(&sym) else {
            return Vec::new();
        };
        let mut out: Vec<ClassId> = ids.iter().map(|&c| self.find(c)).collect();
        out.sort();
        out.dedup();
        // Stale entries can point at classes that no longer hold the op
        // (nodes are only ever merged, never removed, so a class that
        // absorbed one keeps it; no filtering needed).
        out
    }

    /// Canonical ids of all live classes.
    pub fn classes(&self) -> Vec<ClassId> {
        let mut ids: Vec<ClassId> = self.classes.keys().copied().collect();
        ids.sort();
        ids
    }

    /// The canonical classes holding a node that uses `id` as a child
    /// (the parent/uses index), sorted and deduplicated. Parent entries
    /// survive merges — a class absorbed by a union hands its parent
    /// list to the surviving root — so the index is complete for every
    /// node ever inserted.
    pub fn parent_classes(&self, id: ClassId) -> Vec<ClassId> {
        let id = self.find(id);
        let Some(class) = self.classes.get(&id) else {
            return Vec::new();
        };
        let mut out: Vec<ClassId> = class.parents.iter().map(|&(_, pc)| self.find(pc)).collect();
        out.sort();
        out.dedup();
        out
    }

    /// The set of canonical classes within `depth` parent (uses) edges
    /// of any seed class, seeds included.
    ///
    /// This is the dirty set for delta-driven e-matching: if a class
    /// `x` changed, every pattern match that could newly succeed (or
    /// whose canonical substitution could have changed) has `x`
    /// somewhere in its match tree, so the match's *root* class lies at
    /// most `pattern depth` parent steps above `x`. Seeds may be stale
    /// ids; they are canonicalized here.
    pub fn dirty_cone(&self, seeds: &[ClassId], depth: usize) -> HashSet<ClassId> {
        let mut cone: HashSet<ClassId> = seeds.iter().map(|&c| self.find(c)).collect();
        let mut frontier: Vec<ClassId> = cone.iter().copied().collect();
        for _ in 0..depth {
            let mut next = Vec::new();
            for &c in &frontier {
                let Some(class) = self.classes.get(&c) else {
                    continue;
                };
                for &(_, pc) in &class.parents {
                    let pc = self.find(pc);
                    if cone.insert(pc) {
                        next.push(pc);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        cone
    }

    /// The canonicalized, deduplicated e-nodes of a class, materialized
    /// as owned [`ENode`]s.
    ///
    /// This is the convenience view (snapshots, diagnostics, tests);
    /// hot paths walk the arena through [`EGraph::class_node_ids`] /
    /// [`EGraph::node_op`] / [`EGraph::node_children`] instead, which
    /// allocate nothing.
    pub fn nodes(&self, id: ClassId) -> Vec<ENode> {
        let id = self.find(id);
        let Some(class) = self.classes.get(&id) else {
            return Vec::new();
        };
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for &nid in &class.nodes {
            let node = ENode {
                op: self.node_ops[nid.index()],
                children: self
                    .pool
                    .get(self.node_slices[nid.index()])
                    .iter()
                    .map(|&c| self.find(c))
                    .collect(),
            };
            if seen.insert(node.clone()) {
                out.push(node);
            }
        }
        out
    }

    /// The arena ids of the e-nodes stored in a class, in first-seen
    /// order. After [`EGraph::rebuild`] the list is deduplicated and
    /// every node's child slice is canonical; between rebuilds it may
    /// briefly hold congruent duplicates with stale child ids (readers
    /// pass children through [`EGraph::find`]).
    pub fn class_node_ids(&self, id: ClassId) -> &[NodeId] {
        let id = self.find(id);
        self.classes
            .get(&id)
            .map(|c| c.nodes.as_slice())
            .unwrap_or(&[])
    }

    /// The raw parent entries of a class: arena nodes that use this
    /// class as a child, paired with the class each parent node was in
    /// when recorded (possibly stale; canonicalize via
    /// [`EGraph::find`]).
    pub fn class_parents(&self, id: ClassId) -> &[(NodeId, ClassId)] {
        let id = self.find(id);
        self.classes
            .get(&id)
            .map(|c| c.parents.as_slice())
            .unwrap_or(&[])
    }

    /// Head operator of an arena node.
    pub fn node_op(&self, id: NodeId) -> Op {
        self.node_ops[id.index()]
    }

    /// Child classes of an arena node, as last canonicalized. Stored
    /// ids may be stale after unions; pass them through
    /// [`EGraph::find`] before comparing.
    pub fn node_children(&self, id: NodeId) -> &[ClassId] {
        self.pool.get(self.node_slices[id.index()])
    }

    /// The interned child-slice id of an arena node. Content-addressed:
    /// after [`EGraph::rebuild`], nodes with identical canonical child
    /// lists report the same id.
    pub fn node_slice(&self, id: NodeId) -> SliceId {
        self.node_slices[id.index()]
    }

    /// Memory accounting for the arena/SoA storage (payload bytes, not
    /// allocator capacity, so the numbers are deterministic). See
    /// docs/INTERNALS.md for the layout these measure.
    pub fn memory_stats(&self) -> MemoryStats {
        use std::mem::size_of;
        let enode_size = size_of::<ENode>() as u64;
        let child_size = size_of::<ClassId>() as u64;
        let nodes = self.node_ops.len() as u64;
        let arena_bytes = nodes * (size_of::<Op>() + size_of::<SliceId>()) as u64;
        let slice_bytes = (self.pool.data.len() * size_of::<ClassId>()
            + self.pool.spans.len() * size_of::<(u32, u32)>()) as u64;
        let mut class_bytes = 0u64;
        let mut legacy_bytes = 0u64;
        let mut shared_child_refs = 0u64;
        for class in self.classes.values() {
            class_bytes += (class.nodes.len() * size_of::<NodeId>()
                + class.parents.len() * size_of::<(NodeId, ClassId)>())
                as u64;
            // The pre-arena layout stored an owned `ENode` clone per
            // node-list entry and per parent entry (plus the parent's
            // class id), each with its own heap-allocated child vector.
            for &nid in &class.nodes {
                let c = self.node_children(nid).len() as u64;
                legacy_bytes += enode_size + c * child_size;
            }
            for &(nid, _) in &class.parents {
                let c = self.node_children(nid).len() as u64;
                legacy_bytes += enode_size + c * child_size + child_size;
            }
        }
        let memo_bytes =
            (self.memo.len() * (size_of::<(Op, SliceId)>() + size_of::<ClassId>())) as u64;
        for &(_, slice) in self.memo.keys() {
            // ...and an owned `ENode` key (plus the class-id value) per
            // memo entry.
            let c = self.pool.get(slice).len() as u64;
            legacy_bytes += enode_size + c * child_size + child_size;
        }
        for &slice in &self.node_slices {
            shared_child_refs += self.pool.get(slice).len() as u64;
        }
        MemoryStats {
            nodes,
            classes: self.classes.len() as u64,
            arena_bytes,
            slice_bytes,
            slice_entries: self.pool.spans.len() as u64,
            slice_refs: nodes,
            shared_child_bytes: shared_child_refs * child_size,
            class_bytes,
            memo_bytes,
            total_bytes: arena_bytes + slice_bytes + class_bytes + memo_bytes,
            legacy_bytes,
            reclaimed_bytes: self.reclaimed_bytes,
        }
    }
}

fn ordered(a: ClassId, b: ClassId) -> (ClassId, ClassId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> Term {
        let sexpr = denali_term::sexpr::parse_one(s).unwrap();
        Term::from_sexpr(&sexpr, &[]).unwrap()
    }

    #[test]
    fn hashconsing_shares_structure() {
        let mut eg = EGraph::new();
        let a = eg.add_term(&t("(add64 x y)")).unwrap();
        let b = eg.add_term(&t("(add64 x y)")).unwrap();
        assert_eq!(a, b);
        // x, y, add64(x,y) = 3 classes.
        assert_eq!(eg.num_classes(), 3);
    }

    #[test]
    fn class_capacity_fails_cleanly_instead_of_panicking() {
        let mut eg = EGraph::new();
        eg.set_class_capacity(2);
        // x, y fit; add64(x, y) would be the third class.
        let err = eg.add_term(&t("(add64 x y)")).unwrap_err();
        assert!(err.is_too_many_classes(), "unexpected error: {err}");
        assert_eq!(err.kind(), EGraphErrorKind::TooManyClasses);
        assert!(err.to_string().contains("class budget"));
        assert_eq!(eg.num_classes(), 2);
        // Hashcons hits never consume capacity: re-adding existing
        // terms still succeeds at the limit.
        let x = eg.add_term(&t("x")).unwrap();
        assert_eq!(eg.find(x), x);
    }

    #[test]
    fn union_merges_and_find_canonicalizes() {
        let mut eg = EGraph::new();
        let x = eg.add_term(&t("x")).unwrap();
        let y = eg.add_term(&t("y")).unwrap();
        assert_ne!(eg.find(x), eg.find(y));
        eg.union(x, y).unwrap();
        eg.rebuild().unwrap();
        assert_eq!(eg.find(x), eg.find(y));
    }

    #[test]
    fn congruence_closure_merges_parents() {
        // x = y implies f(x) = f(y).
        let mut eg = EGraph::new();
        let fx = eg.add_term(&t("(f x)")).unwrap();
        let fy = eg.add_term(&t("(f y)")).unwrap();
        let x = eg.lookup_term(&t("x")).unwrap();
        let y = eg.lookup_term(&t("y")).unwrap();
        assert_ne!(eg.find(fx), eg.find(fy));
        eg.union(x, y).unwrap();
        eg.rebuild().unwrap();
        assert_eq!(eg.find(fx), eg.find(fy));
    }

    #[test]
    fn congruence_closure_is_transitive_through_layers() {
        // x = y implies g(f(x)) = g(f(y)).
        let mut eg = EGraph::new();
        let gfx = eg.add_term(&t("(g (f x))")).unwrap();
        let gfy = eg.add_term(&t("(g (f y))")).unwrap();
        let x = eg.lookup_term(&t("x")).unwrap();
        let y = eg.lookup_term(&t("y")).unwrap();
        eg.union(x, y).unwrap();
        eg.rebuild().unwrap();
        assert_eq!(eg.find(gfx), eg.find(gfy));
    }

    #[test]
    fn constant_folding_is_eager() {
        let mut eg = EGraph::new();
        let four = eg.add_term(&Term::constant(4)).unwrap();
        let pow = eg.add_term(&t("(pow 2 2)")).unwrap();
        assert_eq!(eg.find(four), eg.find(pow));
        assert_eq!(eg.constant(pow), Some(4));
        assert_eq!(eg.constant_class(4), Some(eg.find(four)));
    }

    #[test]
    fn folding_propagates_after_union() {
        // n has no constant; add64(n, 1) unknown. After n = 2 the parent
        // must fold to 3.
        let mut eg = EGraph::new();
        let sum = eg.add_term(&t("(add64 n 1)")).unwrap();
        let n = eg.lookup_term(&t("n")).unwrap();
        assert_eq!(eg.constant(sum), None);
        let two = eg.add_term(&Term::constant(2)).unwrap();
        eg.union(n, two).unwrap();
        eg.rebuild().unwrap();
        assert_eq!(eg.constant(sum), Some(3));
        let three = eg.add_term(&Term::constant(3)).unwrap();
        assert_eq!(eg.find(sum), eg.find(three));
    }

    #[test]
    fn conflicting_constants_are_contradictions() {
        let mut eg = EGraph::new();
        let one = eg.add_term(&Term::constant(1)).unwrap();
        let two = eg.add_term(&Term::constant(2)).unwrap();
        assert!(eg.union(one, two).is_err());
    }

    #[test]
    fn distinctions_block_unions() {
        let mut eg = EGraph::new();
        let x = eg.add_term(&t("x")).unwrap();
        let y = eg.add_term(&t("y")).unwrap();
        eg.assert_distinct(x, y).unwrap();
        assert!(eg.provably_distinct(x, y));
        assert!(eg.union(x, y).is_err());
    }

    #[test]
    fn distinction_in_same_class_is_contradiction() {
        let mut eg = EGraph::new();
        let x = eg.add_term(&t("x")).unwrap();
        let y = eg.add_term(&t("y")).unwrap();
        eg.union(x, y).unwrap();
        eg.rebuild().unwrap();
        assert!(eg.assert_distinct(x, y).is_err());
    }

    #[test]
    fn base_offset_analysis_separates_p_and_p_plus_8() {
        let mut eg = EGraph::new();
        let p = eg.add_term(&t("p")).unwrap();
        let p8 = eg.add_term(&t("(add64 p 8)")).unwrap();
        let p8b = eg.add_term(&t("(addq p 8)")).unwrap();
        eg.rebuild().unwrap();
        assert!(eg.provably_distinct(p, p8));
        assert!(eg.provably_distinct(p, p8b));
        // Two different offsets from the same base.
        let p16 = eg.add_term(&t("(add64 p 16)")).unwrap();
        assert!(eg.provably_distinct(p8, p16));
        // Same offset is not distinct (they may be equal).
        assert!(!eg.provably_distinct(p8, p8b));
        // Unknown relationship is not distinct.
        let q = eg.add_term(&t("q")).unwrap();
        assert!(!eg.provably_distinct(p, q));
    }

    #[test]
    fn clause_unit_literal_is_asserted() {
        // The paper's select/store example: the clause
        //   p = p+8  ∨  select(store(M,p,x), p+8) = select(M, p+8)
        // loses its first literal to the offset analysis and asserts the
        // second.
        let mut eg = EGraph::new();
        let p = eg.add_term(&t("p")).unwrap();
        let p8 = eg.add_term(&t("(add64 p 8)")).unwrap();
        let lhs = eg
            .add_term(&t("(select (store M p x) (add64 p 8))"))
            .unwrap();
        let rhs = eg.add_term(&t("(select M (add64 p 8))")).unwrap();
        assert_ne!(eg.find(lhs), eg.find(rhs));
        eg.add_clause(vec![EqLiteral::Eq(p, p8), EqLiteral::Eq(lhs, rhs)]);
        eg.rebuild().unwrap();
        assert_eq!(eg.find(lhs), eg.find(rhs));
    }

    #[test]
    fn clause_satisfied_by_true_literal_is_dropped() {
        let mut eg = EGraph::new();
        let x = eg.add_term(&t("x")).unwrap();
        let y = eg.add_term(&t("y")).unwrap();
        let z = eg.add_term(&t("z")).unwrap();
        eg.union(x, y).unwrap();
        // x = y is already true; the clause must not force y = z.
        eg.add_clause(vec![EqLiteral::Eq(x, y), EqLiteral::Eq(y, z)]);
        eg.rebuild().unwrap();
        assert_ne!(eg.find(y), eg.find(z));
    }

    #[test]
    fn clause_with_all_untenable_literals_is_a_contradiction() {
        let mut eg = EGraph::new();
        let one = eg.add_term(&Term::constant(1)).unwrap();
        let two = eg.add_term(&Term::constant(2)).unwrap();
        let three = eg.add_term(&Term::constant(3)).unwrap();
        eg.add_clause(vec![EqLiteral::Eq(one, two), EqLiteral::Eq(two, three)]);
        assert!(eg.rebuild().is_err());
    }

    #[test]
    fn ne_literal_asserts_distinction() {
        let mut eg = EGraph::new();
        let x = eg.add_term(&t("x")).unwrap();
        let y = eg.add_term(&t("y")).unwrap();
        let one = eg.add_term(&Term::constant(1)).unwrap();
        let one_b = eg.add_term(&Term::constant(1)).unwrap();
        // First literal Eq(1,1)... is satisfied, so nothing asserted.
        eg.add_clause(vec![EqLiteral::Eq(one, one_b), EqLiteral::Ne(x, y)]);
        eg.rebuild().unwrap();
        assert!(!eg.provably_distinct(x, y));
        // Now a clause whose only tenable literal is the distinction.
        let two = eg.add_term(&Term::constant(2)).unwrap();
        eg.add_clause(vec![EqLiteral::Eq(one, two), EqLiteral::Ne(x, y)]);
        eg.rebuild().unwrap();
        assert!(eg.provably_distinct(x, y));
        assert!(eg.union(x, y).is_err());
    }

    #[test]
    fn nodes_are_canonical_and_deduped() {
        let mut eg = EGraph::new();
        let fx = eg.add_term(&t("(f x)")).unwrap();
        let fy = eg.add_term(&t("(f y)")).unwrap();
        let x = eg.lookup_term(&t("x")).unwrap();
        let y = eg.lookup_term(&t("y")).unwrap();
        eg.union(x, y).unwrap();
        eg.rebuild().unwrap();
        // f(x) and f(y) are now the same canonical node.
        let nodes = eg.nodes(fx);
        assert_eq!(nodes.len(), 1);
        assert_eq!(eg.find(fx), eg.find(fy));
    }

    #[test]
    fn interned_slices_are_shared_by_content() {
        let mut eg = EGraph::new();
        let fxy = eg.add_term(&t("(f x y)")).unwrap();
        let gxy = eg.add_term(&t("(g x y)")).unwrap();
        // f(x,y) and g(x,y) have identical child lists, so the arena
        // nodes share one interned slice (and differ only in op).
        let f_nid = eg.class_node_ids(fxy)[0];
        let g_nid = eg.class_node_ids(gxy)[0];
        assert_eq!(eg.node_slice(f_nid), eg.node_slice(g_nid));
        assert_ne!(eg.node_op(f_nid), eg.node_op(g_nid));
        assert_eq!(eg.node_children(f_nid), eg.node_children(g_nid));
        let mem = eg.memory_stats();
        assert_eq!(mem.nodes, 4, "x, y, f(x,y), g(x,y)");
        assert_eq!(mem.slice_refs, 4);
        // Three distinct slices: [], and one shared [x, y].
        assert_eq!(mem.slice_entries, 2);
        assert!(mem.legacy_bytes > mem.total_bytes);
        assert!(mem.dedup_ratio() > 0.0);
    }

    #[test]
    fn lookup_term_does_not_insert() {
        let mut eg = EGraph::new();
        eg.add_term(&t("(f x)")).unwrap();
        let before = eg.num_nodes();
        assert!(eg.lookup_term(&t("(g x)")).is_none());
        assert_eq!(eg.num_nodes(), before);
    }

    #[test]
    fn add_instantiation_uses_bindings() {
        let mut eg = EGraph::new();
        let reg6 = eg.add_term(&t("reg6")).unwrap();
        let one = eg.add_term(&Term::constant(1)).unwrap();
        let pattern = Term::call("s4addq", vec![Term::var("k"), Term::var("n")]);
        let mut subst = Subst::new();
        subst.insert(Symbol::intern("k"), reg6);
        subst.insert(Symbol::intern("n"), one);
        let c = eg.add_instantiation(&pattern, &subst).unwrap();
        assert_eq!(eg.lookup_term(&t("(s4addq reg6 1)")), Some(eg.find(c)));
        // Missing binding errors.
        let bad = Term::var("missing");
        assert!(eg.add_instantiation(&bad, &subst).is_err());
    }

    #[test]
    fn figure2_shift_equivalence_via_congruence() {
        // Manually apply the Figure 2 steps: after asserting
        // mul64(reg6,4) = shl64(reg6,2), both are in one class.
        let mut eg = EGraph::new();
        let goal = eg.add_term(&t("(add64 (mul64 reg6 4) 1)")).unwrap();
        let mul = eg.lookup_term(&t("(mul64 reg6 4)")).unwrap();
        let shift = eg.add_term(&t("(shl64 reg6 2)")).unwrap();
        eg.union(mul, shift).unwrap();
        let s4 = eg.add_term(&t("(s4addq reg6 1)")).unwrap();
        eg.union(goal, s4).unwrap();
        eg.rebuild().unwrap();
        // The goal class now contains add64, and s4addq nodes; the mul
        // class contains mul64 and shl64 nodes.
        let goal_ops: Vec<String> = eg
            .nodes(goal)
            .iter()
            .filter_map(|n| n.sym().map(|s| s.to_string()))
            .collect();
        assert!(goal_ops.contains(&"add64".to_owned()));
        assert!(goal_ops.contains(&"s4addq".to_owned()));
        let mul_ops: Vec<String> = eg
            .nodes(mul)
            .iter()
            .filter_map(|n| n.sym().map(|s| s.to_string()))
            .collect();
        assert!(mul_ops.contains(&"mul64".to_owned()));
        assert!(mul_ops.contains(&"shl64".to_owned()));
    }

    #[test]
    fn journal_records_new_classes_and_constants() {
        let mut eg = EGraph::new();
        let g0 = eg.generation();
        let sum = eg.add_term(&t("(add64 x 4)")).unwrap();
        assert!(eg.generation() > g0, "adding terms bumps the generation");
        let delta = eg.take_delta();
        // Every created class is journaled: x, 4, add64(x, 4).
        let touched: HashSet<ClassId> = delta.classes.iter().map(|&c| eg.find(c)).collect();
        for id in [sum, eg.lookup_term(&t("x")).unwrap()] {
            assert!(touched.contains(&eg.find(id)), "missing {id:?}");
        }
        assert_eq!(delta.constants, vec![4], "new constant values journaled");
        // Draining resets the journal; no-op lookups journal nothing.
        let g1 = eg.generation();
        eg.add_term(&t("(add64 x 4)")).unwrap(); // hashcons hit
        assert_eq!(eg.generation(), g1);
        assert!(eg.take_delta().is_empty());
    }

    #[test]
    fn journal_records_unions() {
        let mut eg = EGraph::new();
        let x = eg.add_term(&t("x")).unwrap();
        let y = eg.add_term(&t("y")).unwrap();
        eg.take_delta();
        let g0 = eg.generation();
        eg.union(x, y).unwrap();
        eg.rebuild().unwrap();
        assert!(eg.generation() > g0);
        let delta = eg.take_delta();
        let touched: HashSet<ClassId> = delta.classes.iter().map(|&c| eg.find(c)).collect();
        assert!(touched.contains(&eg.find(x)), "merged class journaled");
    }

    #[test]
    fn journal_records_congruence_merges() {
        // x = y merges f(x)/f(y) by congruence; the parent class must be
        // journaled even though union() was never called on it directly.
        let mut eg = EGraph::new();
        let fx = eg.add_term(&t("(f x)")).unwrap();
        let fy = eg.add_term(&t("(f y)")).unwrap();
        let x = eg.lookup_term(&t("x")).unwrap();
        let y = eg.lookup_term(&t("y")).unwrap();
        eg.take_delta();
        eg.union(x, y).unwrap();
        eg.rebuild().unwrap();
        let delta = eg.take_delta();
        let touched: HashSet<ClassId> = delta.classes.iter().map(|&c| eg.find(c)).collect();
        assert!(touched.contains(&eg.find(fx)));
        assert!(touched.contains(&eg.find(fy)));
    }

    #[test]
    fn journal_records_constant_folds() {
        // n = 2 folds add64(n, 1) to 3: the folded class and the new
        // constant value must both land in the journal, or a delta
        // matcher would miss matches the fold enables.
        let mut eg = EGraph::new();
        let sum = eg.add_term(&t("(add64 n 1)")).unwrap();
        let n = eg.lookup_term(&t("n")).unwrap();
        let two = eg.add_term(&Term::constant(2)).unwrap();
        eg.take_delta();
        eg.union(n, two).unwrap();
        eg.rebuild().unwrap();
        assert_eq!(eg.constant(sum), Some(3));
        let delta = eg.take_delta();
        let touched: HashSet<ClassId> = delta.classes.iter().map(|&c| eg.find(c)).collect();
        assert!(touched.contains(&eg.find(sum)), "folded class journaled");
        assert!(delta.constants.contains(&3), "folded value journaled");
    }

    #[test]
    fn op_counts_attribute_work() {
        let mut eg = EGraph::new();
        let _fx = eg.add_term(&t("(f x)")).unwrap();
        let _fy = eg.add_term(&t("(f y)")).unwrap();
        let x = eg.lookup_term(&t("x")).unwrap();
        let y = eg.lookup_term(&t("y")).unwrap();
        let before = eg.op_counts();
        assert_eq!(before.new_nodes, 4, "f(x), x, f(y), y");
        assert_eq!(before.unions, 0);
        eg.add_term(&t("(f x)")).unwrap(); // pure hashcons hits
        let hits = eg.op_counts().since(before);
        assert_eq!(hits.adds, 2);
        assert_eq!(hits.hits, 2);
        assert_eq!(hits.new_nodes, 0);
        // One asserted union; rebuild merges f(x)/f(y) by congruence.
        let before = eg.op_counts();
        eg.union(x, y).unwrap();
        eg.rebuild().unwrap();
        let merged = eg.op_counts().since(before);
        assert_eq!(merged.unions, 2);
        assert_eq!(merged.congruence_unions, 1, "only f(x)=f(y) is repair");
        assert_eq!(merged.rebuilds, 1);
        // A fold: n = 2 gives add64(n, 1) the value 3.
        let mut eg = EGraph::new();
        eg.add_term(&t("(add64 n 1)")).unwrap();
        let n = eg.lookup_term(&t("n")).unwrap();
        let two = eg.add_term(&Term::constant(2)).unwrap();
        let before = eg.op_counts();
        eg.union(n, two).unwrap();
        eg.rebuild().unwrap();
        assert_eq!(eg.op_counts().since(before).folds, 1);
    }

    #[test]
    fn dirty_cone_walks_parents_to_bounded_depth() {
        let mut eg = EGraph::new();
        let gfx = eg.add_term(&t("(g (f x))")).unwrap();
        let fx = eg.lookup_term(&t("(f x)")).unwrap();
        let x = eg.lookup_term(&t("x")).unwrap();
        eg.rebuild().unwrap();
        let cone0 = eg.dirty_cone(&[x], 0);
        assert_eq!(cone0, [eg.find(x)].into_iter().collect());
        let cone1 = eg.dirty_cone(&[x], 1);
        assert!(cone1.contains(&eg.find(fx)) && !cone1.contains(&eg.find(gfx)));
        let cone2 = eg.dirty_cone(&[x], 2);
        for id in [x, fx, gfx] {
            assert!(cone2.contains(&eg.find(id)));
        }
    }

    #[test]
    fn dirty_cone_follows_merged_parent_edges() {
        // After f(x)'s class merges with m's, parents recorded against
        // either pre-merge class must still pull h(m) into x's cone.
        let mut eg = EGraph::new();
        let fx = eg.add_term(&t("(f x)")).unwrap();
        let hm = eg.add_term(&t("(h m)")).unwrap();
        let m = eg.lookup_term(&t("m")).unwrap();
        let x = eg.lookup_term(&t("x")).unwrap();
        eg.union(fx, m).unwrap();
        eg.rebuild().unwrap();
        let cone = eg.dirty_cone(&[x], 2);
        assert!(cone.contains(&eg.find(hm)), "cone: {cone:?}");
    }
}
