//! Chrome-trace (a.k.a. Trace Event Format) exporter, the JSON flavor
//! understood by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev).
//!
//! Span enter/exit pairs and retrospective spans both become `"X"`
//! (complete) events — complete events carry their own duration, so the
//! viewer reconstructs nesting purely from timestamp containment and no
//! begin/end ordering constraints apply. Trace events become `"i"`
//! (instant) events. Record fields are attached under `args`.
//!
//! The serial record stream has no thread identity by design (that is
//! what makes it deterministic), so everything lands on one track
//! (`pid` 1 / `tid` 1) — the hierarchy, not the scheduling, is the
//! information.

use std::collections::HashMap;

use crate::json::{self};
use crate::{OwnedField, Record, Value};

fn write_args(out: &mut String, fields: &[(String, Value)]) {
    out.push_str("\"args\":{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_str(out, k);
        out.push(':');
        match v {
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(n) => {
                use std::fmt::Write as _;
                let _ = write!(out, "{n}");
            }
            Value::I64(n) => {
                use std::fmt::Write as _;
                let _ = write!(out, "{n}");
            }
            Value::F64(x) => json::write_f64(out, *x),
            Value::Str(s) => json::write_str(out, s),
        }
    }
    out.push('}');
}

fn push_complete(
    out: &mut String,
    first: &mut bool,
    name: &str,
    t_us: u64,
    dur_us: u64,
    fields: &[(String, Value)],
) {
    use std::fmt::Write as _;
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str("{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"name\":");
    json::write_str(out, name);
    let _ = write!(out, ",\"ts\":{t_us},\"dur\":{dur_us},");
    write_args(out, fields);
    out.push('}');
}

fn push_instant(
    out: &mut String,
    first: &mut bool,
    name: &str,
    t_us: u64,
    fields: &[(String, Value)],
) {
    use std::fmt::Write as _;
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str("{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":1,\"name\":");
    json::write_str(out, name);
    let _ = write!(out, ",\"ts\":{t_us},");
    write_args(out, fields);
    out.push('}');
}

/// Renders records as a Chrome-trace JSON document
/// (`{"traceEvents":[...],"displayTimeUnit":"ms"}`).
///
/// Timestamps are microseconds since the trace epoch, which is what the
/// format expects. A `Begin` with no matching `End` (a crash mid-span)
/// is emitted with zero duration so the trace still loads.
pub fn to_string(records: &[Record]) -> String {
    // Pair Begin/End by id, folding End fields into the Begin's.
    let mut ends: HashMap<u64, (u64, &[OwnedField])> = HashMap::new();
    for r in records {
        if let Record::End { id, t_us, fields } = r {
            ends.insert(*id, (*t_us, fields));
        }
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    for r in records {
        match r {
            Record::Begin {
                id,
                name,
                t_us,
                fields,
                ..
            } => {
                let (end_us, end_fields) = ends.get(id).map_or((*t_us, &[][..]), |(t, f)| (*t, f));
                let mut all = fields.clone();
                all.extend(end_fields.iter().cloned());
                push_complete(
                    &mut out,
                    &mut first,
                    name,
                    *t_us,
                    end_us.saturating_sub(*t_us),
                    &all,
                );
            }
            Record::End { .. } => {}
            Record::Complete {
                name,
                t_us,
                dur_us,
                fields,
                ..
            } => push_complete(&mut out, &mut first, name, *t_us, *dur_us, fields),
            Record::Event {
                name, t_us, fields, ..
            } => push_instant(&mut out, &mut first, name, *t_us, fields),
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::{field, Tracer};

    #[test]
    fn export_is_valid_and_nested() {
        let t = Tracer::new();
        let outer = t.span("search");
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.complete_span("probe", None, 0.0, 1.0, vec![field("k", 2u32)]);
        t.event("sat.probe", || vec![field("outcome", "unsat")]);
        outer.finish();
        let doc = chrome_parse(&to_string(&t.records()));
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 3);
        // The span became an X event enclosing the probe's timestamps.
        let outer_ev = &events[0];
        assert_eq!(outer_ev.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(outer_ev.get("name").and_then(Json::as_str), Some("search"));
        let o_ts = outer_ev.get("ts").and_then(Json::as_u64).unwrap();
        let o_dur = outer_ev.get("dur").and_then(Json::as_u64).unwrap();
        let probe_ev = &events[1];
        let p_ts = probe_ev.get("ts").and_then(Json::as_u64).unwrap();
        let p_dur = probe_ev.get("dur").and_then(Json::as_u64).unwrap();
        assert!(
            o_ts <= p_ts && p_ts + p_dur <= o_ts + o_dur,
            "probe nests in search"
        );
        assert_eq!(
            probe_ev
                .get("args")
                .unwrap()
                .get("k")
                .and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(events[2].get("ph").and_then(Json::as_str), Some("i"));
    }

    #[test]
    fn unmatched_begin_still_loads() {
        let records = vec![crate::Record::Begin {
            id: 0,
            parent: None,
            name: "crashed".into(),
            t_us: 10,
            fields: Vec::new(),
        }];
        let doc = chrome_parse(&to_string(&records));
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events[0].get("dur").and_then(Json::as_u64), Some(0));
    }

    fn chrome_parse(text: &str) -> Json {
        crate::json::parse(text).expect("chrome export must be valid JSON")
    }
}
