#![warn(missing_docs)]

//! Zero-dependency structured tracing for the Denali pipeline.
//!
//! The paper's headline claims are timing *splits* — matching versus
//! satisfiability search, probe-by-probe refutation cost — so the
//! pipeline needs one coherent place to hang measurements. This crate
//! provides it:
//!
//! * **Hierarchical spans** — [`Tracer::span`] records an enter/exit
//!   pair with monotonic timestamps and a parent link (the enclosing
//!   span at enter time). [`Tracer::complete_span`] records a span
//!   retrospectively from a measured duration, which is how work that
//!   ran speculatively on another thread is logged at the moment the
//!   serial control flow *consumes* it — keeping the record stream
//!   identical at every thread count.
//! * **Typed events** — [`Tracer::event`] records a named point-in-time
//!   fact carrying key/value [`Field`]s (SAT probe outcomes, per-axiom
//!   match counts, e-graph growth).
//! * **Thread-aware buffering** — [`Tracer::local`] hands a detached
//!   [`LocalBuffer`] to a fork-join worker; [`Tracer::splice`] merges
//!   the buffers back **in caller-supplied order**, so the merged
//!   stream is deterministic regardless of how the scheduler
//!   interleaved the workers.
//! * **Sinks** — [`jsonl`] writes/parses the stable line-oriented
//!   schema documented in `docs/TRACING.md`; [`chrome`] exports the
//!   Chrome-trace/Perfetto JSON flavor for `chrome://tracing`;
//!   [`report`] renders per-phase / per-axiom / per-probe summary
//!   tables from a record stream.
//!
//! A disabled tracer (the default) is a single `Option` check per call
//! and allocates nothing; timing a span still works (the guard carries
//! its own [`Instant`]), so callers can feed wall-clock aggregates from
//! the same guard that would have produced the trace record.
//!
//! Determinism contract: with tracing enabled, the record stream for a
//! given input is identical across runs and thread counts *modulo
//! timestamps* — compare streams with [`normalized`], which zeroes
//! `t_us`/`dur_us` and drops fields whose key ends in `_ms`, `_us`, or
//! `_ns`.

use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

pub mod chrome;
pub mod json;
pub mod jsonl;
pub mod report;

/// A typed field value attached to a span or event.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Boolean flag.
    Bool(bool),
    /// Unsigned counter / gauge.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating-point measurement (milliseconds, ratios).
    F64(f64),
    /// Free-form text (names, outcomes).
    Str(String),
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// One key/value pair on a span or event.
#[derive(Clone, Debug, PartialEq)]
pub struct Field {
    /// Field key. By convention, keys ending in `_ms`/`_us`/`_ns` are
    /// wall-clock measurements and are dropped by [`normalized`].
    pub key: &'static str,
    /// Field value.
    pub value: Value,
}

/// Builds a [`Field`] (sugar for struct-literal noise at call sites).
pub fn field(key: &'static str, value: impl Into<Value>) -> Field {
    Field {
        key,
        value: value.into(),
    }
}

/// One record of the trace stream.
///
/// The stream is strictly append-only and serially ordered: record
/// order is the order the serial control flow reached each point, which
/// is what makes traces diffable across runs and thread counts.
#[derive(Clone, Debug, PartialEq)]
pub enum Record {
    /// A span was entered.
    Begin {
        /// Span id, unique within the trace, assigned in record order.
        id: u64,
        /// Enclosing span at enter time.
        parent: Option<u64>,
        /// Span name (e.g. `"match"`, `"saturate.round"`).
        name: String,
        /// Microseconds since the trace epoch.
        t_us: u64,
        /// Fields known at enter time.
        fields: Vec<(String, Value)>,
    },
    /// A span was exited.
    End {
        /// Id of the matching [`Record::Begin`].
        id: u64,
        /// Microseconds since the trace epoch.
        t_us: u64,
        /// Fields computed during the span (counts, outcomes).
        fields: Vec<(String, Value)>,
    },
    /// A retrospective span: work measured elsewhere (possibly on
    /// another thread) logged when the serial control flow consumed it.
    Complete {
        /// Span id (same namespace as [`Record::Begin`] ids).
        id: u64,
        /// Enclosing span (or explicit parent for nested completes).
        parent: Option<u64>,
        /// Span name (e.g. `"probe"`, `"solve"`).
        name: String,
        /// Start timestamp, microseconds since the trace epoch.
        t_us: u64,
        /// Duration in microseconds.
        dur_us: u64,
        /// Fields.
        fields: Vec<(String, Value)>,
    },
    /// A point-in-time event.
    Event {
        /// Enclosing span when recorded.
        span: Option<u64>,
        /// Event name (e.g. `"sat.probe"`, `"ematch.axiom"`).
        name: String,
        /// Microseconds since the trace epoch.
        t_us: u64,
        /// Fields.
        fields: Vec<(String, Value)>,
    },
}

impl Record {
    /// The record's name (`None` for [`Record::End`]).
    pub fn name(&self) -> Option<&str> {
        match self {
            Record::Begin { name, .. }
            | Record::Complete { name, .. }
            | Record::Event { name, .. } => Some(name),
            Record::End { .. } => None,
        }
    }

    /// The record's fields.
    pub fn fields(&self) -> &[(String, Value)] {
        match self {
            Record::Begin { fields, .. }
            | Record::End { fields, .. }
            | Record::Complete { fields, .. }
            | Record::Event { fields, .. } => fields,
        }
    }

    /// Looks up a field value by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields().iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

#[derive(Default)]
struct State {
    records: Vec<Record>,
    stack: Vec<u64>,
    next_id: u64,
}

struct Inner {
    epoch: Instant,
    state: Mutex<State>,
}

/// A handle to one trace. Cheap to clone (an `Arc`), `Send + Sync`;
/// the disabled handle ([`Tracer::disabled`], also [`Default`]) makes
/// every recording call a no-op behind a single `Option` check.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// True if the `DENALI_TRACE` environment variable requests tracing
/// (set to anything but `0`/`false`/`off`).
pub fn env_enabled() -> bool {
    match std::env::var("DENALI_TRACE") {
        Ok(v) => !matches!(v.trim(), "" | "0" | "false" | "off"),
        Err(_) => false,
    }
}

impl Tracer {
    /// Creates an enabled tracer with its epoch at "now".
    pub fn new() -> Tracer {
        Tracer {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// The disabled tracer: every call is a no-op.
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// Enabled iff requested: [`Tracer::new`] when `on`, else disabled.
    pub fn when(on: bool) -> Tracer {
        if on {
            Tracer::new()
        } else {
            Tracer::disabled()
        }
    }

    /// True if records are being collected.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn now_us(inner: &Inner) -> u64 {
        inner.epoch.elapsed().as_micros() as u64
    }

    /// Enters a span. The returned guard records the exit on
    /// [`Span::finish`] (or on drop) and always measures wall-clock,
    /// even when tracing is disabled.
    pub fn span(&self, name: &'static str) -> Span {
        self.span_fields(name, Vec::new())
    }

    /// Enters a span carrying fields known at enter time.
    pub fn span_fields(&self, name: &'static str, fields: Vec<Field>) -> Span {
        let start = Instant::now();
        let id = self.inner.as_ref().map(|inner| {
            let t_us = Tracer::now_us(inner);
            let mut st = inner.state.lock().expect("trace state poisoned");
            let id = st.next_id;
            st.next_id += 1;
            let parent = st.stack.last().copied();
            st.stack.push(id);
            st.records.push(Record::Begin {
                id,
                parent,
                name: name.to_owned(),
                t_us,
                fields: own_fields(fields),
            });
            id
        });
        Span {
            inner: self.inner.clone(),
            id,
            start,
            ended: false,
        }
    }

    /// Records an event under the current span. `fields` is a closure
    /// so the disabled path never builds the field vector.
    pub fn event(&self, name: &'static str, fields: impl FnOnce() -> Vec<Field>) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        let t_us = Tracer::now_us(inner);
        let fields = own_fields(fields());
        let mut st = inner.state.lock().expect("trace state poisoned");
        let span = st.stack.last().copied();
        st.records.push(Record::Event {
            span,
            name: name.to_owned(),
            t_us,
            fields,
        });
    }

    /// Records a retrospective span of `dur_ms` milliseconds that ended
    /// `back_ms` milliseconds before "now". `parent` of `None` nests
    /// under the current span; pass the id of another complete-span to
    /// nest inside it (e.g. `encode`/`solve` inside a `probe`). Returns
    /// the new span's id (`None` when disabled).
    pub fn complete_span(
        &self,
        name: &'static str,
        parent: Option<u64>,
        back_ms: f64,
        dur_ms: f64,
        fields: Vec<Field>,
    ) -> Option<u64> {
        let inner = self.inner.as_ref()?;
        let now = Tracer::now_us(inner);
        let dur_us = (dur_ms.max(0.0) * 1e3) as u64;
        let end_us = now.saturating_sub((back_ms.max(0.0) * 1e3) as u64);
        let t_us = end_us.saturating_sub(dur_us);
        let fields = own_fields(fields);
        let mut st = inner.state.lock().expect("trace state poisoned");
        let id = st.next_id;
        st.next_id += 1;
        let parent = parent.or_else(|| st.stack.last().copied());
        st.records.push(Record::Complete {
            id,
            parent,
            name: name.to_owned(),
            t_us,
            dur_us,
            fields,
        });
        Some(id)
    }

    /// A detached buffer for one fork-join worker (or one work item).
    /// The buffer only records events; merge it back with
    /// [`Tracer::splice`].
    pub fn local(&self) -> LocalBuffer {
        LocalBuffer {
            enabled: self.is_enabled(),
            epoch: self.inner.as_ref().map(|i| i.epoch),
            events: Vec::new(),
        }
    }

    /// Merges worker buffers into the trace **in iteration order** —
    /// the caller supplies the buffers in logical (input) order, so the
    /// merged stream is independent of scheduling. Each buffered event
    /// is attached to the span current at splice time.
    pub fn splice(&self, buffers: impl IntoIterator<Item = LocalBuffer>) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        let mut st = inner.state.lock().expect("trace state poisoned");
        let span = st.stack.last().copied();
        for buffer in buffers {
            for (name, t_us, fields) in buffer.events {
                st.records.push(Record::Event {
                    span,
                    name,
                    t_us,
                    fields,
                });
            }
        }
    }

    /// Snapshot of every record collected so far.
    pub fn records(&self) -> Vec<Record> {
        match self.inner.as_ref() {
            Some(inner) => inner
                .state
                .lock()
                .expect("trace state poisoned")
                .records
                .clone(),
            None => Vec::new(),
        }
    }

    /// Drains the collected records, leaving the tracer empty (span
    /// stack and id counter are preserved).
    pub fn take_records(&self) -> Vec<Record> {
        match self.inner.as_ref() {
            Some(inner) => {
                std::mem::take(&mut inner.state.lock().expect("trace state poisoned").records)
            }
            None => Vec::new(),
        }
    }
}

/// A recorded field with its key owned, as stored in [`Record`]s.
pub type OwnedField = (String, Value);

fn own_fields(fields: Vec<Field>) -> Vec<OwnedField> {
    fields
        .into_iter()
        .map(|f| (f.key.to_owned(), f.value))
        .collect()
}

/// Guard for an entered span. Exits (recording the `End`) on
/// [`Span::finish`]/[`Span::finish_fields`] or on drop; either way the
/// guard returns/measures the span's wall-clock milliseconds, which
/// works even on a disabled tracer — so one guard can feed both the
/// trace and a coarse aggregate like `denali_core::Telemetry`.
pub struct Span {
    inner: Option<Arc<Inner>>,
    id: Option<u64>,
    start: Instant,
    ended: bool,
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Span")
            .field("id", &self.id)
            .field("ended", &self.ended)
            .finish()
    }
}

impl Span {
    /// The span's id in the trace (`None` on a disabled tracer).
    pub fn id(&self) -> Option<u64> {
        self.id
    }

    /// Milliseconds since the span was entered.
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// Exits the span, returning its wall-clock milliseconds.
    pub fn finish(self) -> f64 {
        self.finish_fields(Vec::new())
    }

    /// Exits the span with end-time fields, returning milliseconds.
    pub fn finish_fields(mut self, fields: Vec<Field>) -> f64 {
        self.end(fields);
        self.elapsed_ms()
    }

    fn end(&mut self, fields: Vec<Field>) {
        if self.ended {
            return;
        }
        self.ended = true;
        let (Some(inner), Some(id)) = (self.inner.as_ref(), self.id) else {
            return;
        };
        let t_us = Tracer::now_us(inner);
        let fields = own_fields(fields);
        let mut st = inner.state.lock().expect("trace state poisoned");
        // Pop this span (and, defensively, anything left above it).
        while let Some(top) = st.stack.pop() {
            if top == id {
                break;
            }
        }
        st.records.push(Record::End { id, t_us, fields });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.end(Vec::new());
    }
}

/// A detached per-worker event buffer (see [`Tracer::local`]).
///
/// Workers record into their own buffer with no synchronization; the
/// serial caller merges buffers in input order with [`Tracer::splice`],
/// so the trace never observes scheduling.
#[derive(Debug)]
pub struct LocalBuffer {
    enabled: bool,
    epoch: Option<Instant>,
    events: Vec<(String, u64, Vec<OwnedField>)>,
}

impl LocalBuffer {
    /// True if the parent tracer is collecting (records are kept).
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Buffers an event. `fields` is a closure so disabled buffers do
    /// no work.
    pub fn event(&mut self, name: &'static str, fields: impl FnOnce() -> Vec<Field>) {
        if !self.enabled {
            return;
        }
        let t_us = self
            .epoch
            .map(|e| e.elapsed().as_micros() as u64)
            .unwrap_or(0);
        self.events
            .push((name.to_owned(), t_us, own_fields(fields())));
    }
}

/// Strips everything wall-clock-dependent from a record stream:
/// `t_us`/`dur_us` become 0 and fields whose key ends in `_ms`, `_us`,
/// or `_ns` are dropped. Two runs of the same compilation must produce
/// identical normalized streams (the determinism contract).
pub fn normalized(records: &[Record]) -> Vec<Record> {
    fn keep(key: &str) -> bool {
        !(key.ends_with("_ms") || key.ends_with("_us") || key.ends_with("_ns"))
    }
    fn strip(fields: &[(String, Value)]) -> Vec<(String, Value)> {
        fields.iter().filter(|(k, _)| keep(k)).cloned().collect()
    }
    records
        .iter()
        .map(|r| match r {
            Record::Begin {
                id,
                parent,
                name,
                fields,
                ..
            } => Record::Begin {
                id: *id,
                parent: *parent,
                name: name.clone(),
                t_us: 0,
                fields: strip(fields),
            },
            Record::End { id, fields, .. } => Record::End {
                id: *id,
                t_us: 0,
                fields: strip(fields),
            },
            Record::Complete {
                id,
                parent,
                name,
                fields,
                ..
            } => Record::Complete {
                id: *id,
                parent: *parent,
                name: name.clone(),
                t_us: 0,
                dur_us: 0,
                fields: strip(fields),
            },
            Record::Event {
                span, name, fields, ..
            } => Record::Event {
                span: *span,
                name: name.clone(),
                t_us: 0,
                fields: strip(fields),
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing_but_still_times() {
        let t = Tracer::disabled();
        let span = t.span("work");
        t.event("ev", || vec![field("k", 1u64)]);
        let ms = span.finish();
        assert!(ms >= 0.0);
        assert!(t.records().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn spans_nest_and_ids_are_sequential() {
        let t = Tracer::new();
        let outer = t.span("outer");
        let inner = t.span_fields("inner", vec![field("n", 3u64)]);
        t.event("tick", Vec::new);
        inner.finish_fields(vec![field("done", true)]);
        outer.finish();
        let records = t.records();
        assert_eq!(records.len(), 5);
        match &records[0] {
            Record::Begin {
                id, parent, name, ..
            } => {
                assert_eq!(*id, 0);
                assert_eq!(*parent, None);
                assert_eq!(name, "outer");
            }
            r => panic!("unexpected {r:?}"),
        }
        match &records[1] {
            Record::Begin {
                id, parent, name, ..
            } => {
                assert_eq!(*id, 1);
                assert_eq!(*parent, Some(0));
                assert_eq!(name, "inner");
            }
            r => panic!("unexpected {r:?}"),
        }
        match &records[2] {
            Record::Event { span, name, .. } => {
                assert_eq!(*span, Some(1));
                assert_eq!(name, "tick");
            }
            r => panic!("unexpected {r:?}"),
        }
        match &records[3] {
            Record::End { id, fields, .. } => {
                assert_eq!(*id, 1);
                assert_eq!(fields[0].0, "done");
            }
            r => panic!("unexpected {r:?}"),
        }
        match &records[4] {
            Record::End { id, .. } => assert_eq!(*id, 0),
            r => panic!("unexpected {r:?}"),
        }
    }

    #[test]
    fn dropping_a_span_ends_it() {
        let t = Tracer::new();
        {
            let _s = t.span("scoped");
        }
        let records = t.records();
        assert_eq!(records.len(), 2);
        assert!(matches!(records[1], Record::End { id: 0, .. }));
    }

    #[test]
    fn complete_spans_nest_by_explicit_parent() {
        let t = Tracer::new();
        let search = t.span("search");
        let probe = t.complete_span("probe", None, 0.0, 5.0, vec![field("k", 2u32)]);
        let enc = t.complete_span("encode", probe, 3.0, 2.0, Vec::new());
        search.finish();
        let records = t.records();
        match &records[1] {
            Record::Complete {
                id, parent, name, ..
            } => {
                assert_eq!(Some(*id), probe);
                assert_eq!(*parent, Some(0), "nests under the search span");
                assert_eq!(name, "probe");
            }
            r => panic!("unexpected {r:?}"),
        }
        match &records[2] {
            Record::Complete { id, parent, .. } => {
                assert_eq!(Some(*id), enc);
                assert_eq!(*parent, probe);
            }
            r => panic!("unexpected {r:?}"),
        }
    }

    #[test]
    fn splice_preserves_caller_order() {
        let t = Tracer::new();
        let _round = t.span("round");
        let mut buffers: Vec<LocalBuffer> = (0..4).map(|_| t.local()).collect();
        // Fill out of order, as a scheduler would.
        for i in [2usize, 0, 3, 1] {
            buffers[i].event("chunk", || vec![field("i", i)]);
        }
        t.splice(buffers);
        let records = t.records();
        let order: Vec<u64> = records
            .iter()
            .filter_map(|r| match r {
                Record::Event { fields, .. } => match fields[0].1 {
                    Value::U64(v) => Some(v),
                    _ => None,
                },
                _ => None,
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
        for r in &records {
            if let Record::Event { span, .. } = r {
                assert_eq!(*span, Some(0), "attached to the round span");
            }
        }
    }

    #[test]
    fn normalization_zeroes_time_and_drops_timing_fields() {
        let t = Tracer::new();
        let s = t.span_fields("p", vec![field("solve_ms", 1.5), field("k", 4u32)]);
        s.finish();
        let norm = normalized(&t.records());
        match &norm[0] {
            Record::Begin { t_us, fields, .. } => {
                assert_eq!(*t_us, 0);
                assert_eq!(fields.len(), 1);
                assert_eq!(fields[0].0, "k");
            }
            r => panic!("unexpected {r:?}"),
        }
    }
}
