//! Minimal hand-rolled JSON support: a string/number writer with
//! correct escaping, and a small recursive-descent parser producing a
//! dynamic [`Json`] value. Just enough for the trace sinks and
//! `trace-report` — not a general-purpose JSON library (no `\u` escape
//! *emission*, objects preserve insertion order via a `Vec`).

use std::fmt::Write as _;

/// Appends a JSON string literal (with quotes) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON number for `v`. Non-finite floats (which JSON cannot
/// represent) are written as `null`.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Pairs are kept **in source order** — the trace
    /// schema treats field order as significant (it is the order the
    /// fields were recorded), so the parser must not sort it away.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one JSON document from `input`. Trailing non-whitespace is an
/// error (use per-line parsing for JSONL).
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(value)
}

/// Maximum array/object nesting the parser accepts. The parser recurses
/// per nesting level, so without a cap adversarial input (`[[[[...`)
/// overflows the stack — an abort, not an error. The serve protocol
/// feeds untrusted request lines through this parser, and no legitimate
/// document here nests more than a few levels.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected '{lit}' at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null").map(|_| Json::Null),
            Some(b't') => self.literal("true").map(|_| Json::Bool(true)),
            Some(b'f') => self.literal("false").map(|_| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.nested(Parser::array),
            Some(b'{') => self.nested(Parser::object),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected '{}' at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn nested(
        &mut self,
        inner: fn(&mut Parser<'a>) -> Result<Json, String>,
    ) -> Result<Json, String> {
        if self.depth >= MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        self.depth += 1;
        let result = inner(self);
        self.depth -= 1;
        result
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by our own
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        b => return Err(format!("bad escape '\\{}'", b as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "invalid number")?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}'"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}f → π";
        let mut out = String::new();
        write_str(&mut out, nasty);
        assert_eq!(parse(&out).unwrap(), Json::Str(nasty.to_owned()));
    }

    #[test]
    fn numbers_round_trip() {
        for v in [0.0, 1.0, -3.5, 1e9, 0.125] {
            let mut out = String::new();
            write_f64(&mut out, v);
            assert_eq!(parse(&out).unwrap().as_f64(), Some(v));
        }
        let mut out = String::new();
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"type":"ev","n":3,"ok":true,"xs":[1,2,{"k":"v"}],"z":null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("type").and_then(Json::as_str), Some("ev"));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        let xs = v.get("xs").and_then(Json::as_arr).unwrap();
        assert_eq!(xs.len(), 3);
        assert_eq!(xs[2].get("k").and_then(Json::as_str), Some("v"));
        assert_eq!(v.get("z"), Some(&Json::Null));
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("{\"a\":").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("\"abc").is_err());
    }

    #[test]
    fn rejects_pathological_nesting() {
        // One past the limit errors instead of overflowing the stack.
        let deep = "[".repeat(100_000);
        let err = parse(&deep).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        // A modestly nested document still parses.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(parse(&ok).is_ok());
    }
}
