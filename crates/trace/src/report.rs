//! Summary rendering for a recorded (or re-parsed) trace: the
//! `denali trace-report` subcommand and the CLI's `// phases:` line on
//! non-success exits both come from here.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::{Record, Value};

fn get<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_u64(fields: &[(String, Value)], key: &str) -> u64 {
    match get(fields, key) {
        Some(Value::U64(n)) => *n,
        Some(Value::I64(n)) => (*n).max(0) as u64,
        Some(Value::F64(x)) if *x >= 0.0 => *x as u64,
        _ => 0,
    }
}

fn get_f64(fields: &[(String, Value)], key: &str) -> f64 {
    match get(fields, key) {
        Some(Value::F64(x)) => *x,
        Some(Value::U64(n)) => *n as f64,
        Some(Value::I64(n)) => *n as f64,
        _ => 0.0,
    }
}

fn get_str<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a str> {
    match get(fields, key) {
        Some(Value::Str(s)) => Some(s),
        _ => None,
    }
}

/// Closed span: name, duration, merged enter+exit fields. (Parent
/// links stay on the records; [`phase_line`] reads them from there.)
struct ClosedSpan {
    name: String,
    dur_us: u64,
    fields: Vec<(String, Value)>,
}

/// Resolves Begin/End pairs and Complete records into closed spans,
/// keyed by id. Unclosed Begins get duration 0.
fn closed_spans(records: &[Record]) -> HashMap<u64, ClosedSpan> {
    let mut spans: HashMap<u64, ClosedSpan> = HashMap::new();
    let mut begin_t: HashMap<u64, u64> = HashMap::new();
    for r in records {
        match r {
            Record::Begin {
                id,
                name,
                t_us,
                fields,
                ..
            } => {
                begin_t.insert(*id, *t_us);
                spans.insert(
                    *id,
                    ClosedSpan {
                        name: name.clone(),
                        dur_us: 0,
                        fields: fields.clone(),
                    },
                );
            }
            Record::End { id, t_us, fields } => {
                if let Some(span) = spans.get_mut(id) {
                    let start = begin_t.get(id).copied().unwrap_or(*t_us);
                    span.dur_us = t_us.saturating_sub(start);
                    span.fields.extend(fields.iter().cloned());
                }
            }
            Record::Complete {
                id,
                name,
                dur_us,
                fields,
                ..
            } => {
                spans.insert(
                    *id,
                    ClosedSpan {
                        name: name.clone(),
                        dur_us: *dur_us,
                        fields: fields.clone(),
                    },
                );
            }
            Record::Event { .. } => {}
        }
    }
    spans
}

/// Ids of spans named `name`, in record order.
fn span_ids_named(records: &[Record], name: &str) -> Vec<u64> {
    records
        .iter()
        .filter_map(|r| match r {
            Record::Begin { id, name: n, .. } | Record::Complete { id, name: n, .. }
                if n == name =>
            {
                Some(*id)
            }
            _ => None,
        })
        .collect()
}

/// Renders the compile's phase split in the same shape as
/// `denali_core::Telemetry`'s `Display` (`match 12.3 ms, search 5.0 ms`):
/// the durations of every direct child span of each `gma` span,
/// aggregated by name in first-seen order. Returns `"(no phases)"` when
/// the trace has no such spans (e.g. a parse error before the pipeline
/// started).
pub fn phase_line(records: &[Record]) -> String {
    let spans = closed_spans(records);
    let roots: Vec<u64> = span_ids_named(records, "gma");
    let mut order: Vec<String> = Vec::new();
    let mut total: HashMap<String, f64> = HashMap::new();
    for r in records {
        let (id, parent) = match r {
            Record::Begin { id, parent, .. } | Record::Complete { id, parent, .. } => {
                (*id, *parent)
            }
            _ => continue,
        };
        let Some(parent) = parent else { continue };
        if !roots.contains(&parent) {
            continue;
        }
        let Some(span) = spans.get(&id) else { continue };
        if !total.contains_key(&span.name) {
            order.push(span.name.clone());
        }
        *total.entry(span.name.clone()).or_insert(0.0) += span.dur_us as f64 / 1e3;
    }
    if order.is_empty() {
        return "(no phases)".to_owned();
    }
    let mut out = String::new();
    for (i, name) in order.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{name} {:.1} ms", total[name]);
    }
    out
}

struct AxiomRow {
    name: String,
    rounds: u64,
    scanned: u64,
    matches: u64,
    applied: u64,
}

/// Renders the full per-phase / per-axiom / per-probe summary of a
/// trace, in the order the pipeline ran.
pub fn render(records: &[Record]) -> String {
    let spans = closed_spans(records);
    let mut out = String::new();

    // -- phases ------------------------------------------------------
    let _ = writeln!(out, "phases: {}", phase_line(records));

    // GMA roots, with name fields.
    for id in span_ids_named(records, "gma") {
        if let Some(span) = spans.get(&id) {
            if let Some(name) = get_str(&span.fields, "name") {
                let _ = writeln!(out, "gma {name}: {:.1} ms", span.dur_us as f64 / 1e3);
            }
        }
    }

    // -- saturation rounds -------------------------------------------
    let rounds: Vec<&ClosedSpan> = records
        .iter()
        .filter_map(|r| match r {
            Record::Begin { id, name, .. } if name == "saturate.round" => spans.get(id),
            _ => None,
        })
        .collect();
    if !rounds.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:<6} {:>5} {:>9} {:>8} {:>10} {:>9}",
            "round", "phase", "scanned", "skipped", "instances", "ms"
        );
        for span in rounds {
            let _ = writeln!(
                out,
                "{:<6} {:>5} {:>9} {:>8} {:>10} {:>9.2}",
                get_u64(&span.fields, "round"),
                get_u64(&span.fields, "phase"),
                get_u64(&span.fields, "scanned"),
                get_u64(&span.fields, "skipped"),
                get_u64(&span.fields, "instances"),
                span.dur_us as f64 / 1e3,
            );
        }
    }

    // -- per-axiom ---------------------------------------------------
    let mut axiom_order: Vec<String> = Vec::new();
    let mut axioms: HashMap<String, AxiomRow> = HashMap::new();
    for r in records {
        let Record::Event { name, fields, .. } = r else {
            continue;
        };
        if name != "ematch.axiom" {
            continue;
        }
        let Some(axiom) = get_str(fields, "axiom") else {
            continue;
        };
        let row = axioms.entry(axiom.to_owned()).or_insert_with(|| {
            axiom_order.push(axiom.to_owned());
            AxiomRow {
                name: axiom.to_owned(),
                rounds: 0,
                scanned: 0,
                matches: 0,
                applied: 0,
            }
        });
        row.rounds += 1;
        row.scanned += get_u64(fields, "scanned");
        row.matches += get_u64(fields, "matches");
        row.applied += get_u64(fields, "applied");
    }
    if !axiom_order.is_empty() {
        let width = axiom_order
            .iter()
            .map(|a| a.len())
            .max()
            .unwrap_or(8)
            .max(8);
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:<width$} {:>6} {:>9} {:>8} {:>8}",
            "axiom", "rounds", "scanned", "matches", "applied"
        );
        for name in &axiom_order {
            let row = &axioms[name];
            let _ = writeln!(
                out,
                "{:<width$} {:>6} {:>9} {:>8} {:>8}",
                row.name, row.rounds, row.scanned, row.matches, row.applied
            );
        }
    }

    // -- per-probe ---------------------------------------------------
    let probes: Vec<&Vec<(String, Value)>> = records
        .iter()
        .filter_map(|r| match r {
            Record::Event { name, fields, .. } if name == "sat.probe" => Some(fields),
            _ => None,
        })
        .collect();
    if !probes.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:>4} {:<8} {:>7} {:>8} {:>9} {:>9} {:>9} {:>9}",
            "k", "outcome", "vars", "clauses", "decisions", "conflicts", "enc_ms", "solve_ms"
        );
        for fields in &probes {
            let _ = writeln!(
                out,
                "{:>4} {:<8} {:>7} {:>8} {:>9} {:>9} {:>9.2} {:>9.2}",
                get_u64(fields, "k"),
                get_str(fields, "outcome").unwrap_or("?"),
                get_u64(fields, "vars"),
                get_u64(fields, "clauses"),
                get_u64(fields, "decisions"),
                get_u64(fields, "conflicts"),
                get_f64(fields, "encode_ms"),
                get_f64(fields, "solve_ms"),
            );
        }
        let solve: f64 = probes.iter().map(|f| get_f64(f, "solve_ms")).sum();
        let encode: f64 = probes.iter().map(|f| get_f64(f, "encode_ms")).sum();
        let _ = writeln!(
            out,
            "{} probes, {:.1} ms encoding, {:.1} ms solving",
            probes.len(),
            encode,
            solve
        );
    }

    // -- serve requests ----------------------------------------------
    // Traces spooled by the server's flight recorder (and sampled
    // traces read back via the `flight` request) seal each request in
    // a `serve.request` complete-span carrying id/outcome/coalesced.
    let requests: Vec<&ClosedSpan> = records
        .iter()
        .filter_map(|r| match r {
            Record::Complete { id, name, .. } if name == "serve.request" => spans.get(id),
            _ => None,
        })
        .collect();
    if !requests.is_empty() {
        let mut order: Vec<String> = Vec::new();
        let mut rows: HashMap<String, (u64, u64, f64, f64)> = HashMap::new();
        for span in &requests {
            let outcome = get_str(&span.fields, "outcome").unwrap_or("?").to_owned();
            let row = rows.entry(outcome.clone()).or_insert_with(|| {
                order.push(outcome);
                (0, 0, 0.0, 0.0)
            });
            row.0 += 1;
            if matches!(get(&span.fields, "coalesced"), Some(Value::Bool(true))) {
                row.1 += 1;
            }
            let ms = span.dur_us as f64 / 1e3;
            row.2 += ms;
            row.3 = row.3.max(ms);
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "serve requests: {}", requests.len());
        let _ = writeln!(
            out,
            "{:<10} {:>6} {:>9} {:>9} {:>9} {:>9}",
            "outcome", "count", "coalesced", "total_ms", "mean_ms", "max_ms"
        );
        for outcome in &order {
            let (count, coalesced, total, max) = rows[outcome];
            let _ = writeln!(
                out,
                "{outcome:<10} {count:>6} {coalesced:>9} {total:>9.2} {:>9.2} {max:>9.2}",
                total / count as f64,
            );
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{field, Tracer};

    fn sample_trace() -> Vec<Record> {
        let t = Tracer::new();
        let gma = t.span_fields("gma", vec![field("name", "f")]);
        let m = t.span("match");
        let round = t.span_fields(
            "saturate.round",
            vec![field("round", 1u64), field("phase", 1u64)],
        );
        t.event("ematch.axiom", || {
            vec![
                field("axiom", "comm-add"),
                field("scanned", 10u64),
                field("matches", 4u64),
                field("applied", 2u64),
            ]
        });
        round.finish_fields(vec![
            field("scanned", 10u64),
            field("skipped", 0u64),
            field("instances", 2u64),
        ]);
        m.finish();
        let s = t.span("search");
        t.event("sat.probe", || {
            vec![
                field("k", 3u32),
                field("outcome", "unsat"),
                field("vars", 120u64),
                field("clauses", 900u64),
                field("decisions", 40u64),
                field("conflicts", 7u64),
                field("encode_ms", 0.5),
                field("solve_ms", 1.25),
            ]
        });
        s.finish();
        gma.finish();
        t.records()
    }

    #[test]
    fn phase_line_matches_telemetry_shape() {
        let line = phase_line(&sample_trace());
        assert!(line.starts_with("match "), "got: {line}");
        assert!(line.contains(", search "), "got: {line}");
        assert!(line.ends_with(" ms"), "got: {line}");
    }

    #[test]
    fn phase_line_without_pipeline_spans() {
        assert_eq!(phase_line(&[]), "(no phases)");
    }

    #[test]
    fn render_includes_all_sections() {
        let text = render(&sample_trace());
        assert!(text.contains("phases: match"), "got:\n{text}");
        assert!(text.contains("gma f:"), "got:\n{text}");
        assert!(text.contains("comm-add"), "got:\n{text}");
        assert!(text.contains("unsat"), "got:\n{text}");
        assert!(text.contains("1 probes"), "got:\n{text}");
    }

    #[test]
    fn render_summarizes_serve_request_spans() {
        let t = Tracer::new();
        t.complete_span(
            "serve.request",
            None,
            0.0,
            3.0,
            vec![
                field("id", "1"),
                field("outcome", "ok"),
                field("coalesced", false),
            ],
        );
        t.complete_span(
            "serve.request",
            None,
            0.0,
            1.0,
            vec![
                field("id", "2"),
                field("outcome", "hit"),
                field("coalesced", true),
            ],
        );
        let text = render(&t.records());
        assert!(text.contains("serve requests: 2"), "got:\n{text}");
        assert!(text.contains("ok"), "got:\n{text}");
        assert!(text.contains("hit"), "got:\n{text}");
        // The coalesced hit shows up in the coalesced column.
        let hit_row = text.lines().find(|l| l.starts_with("hit")).unwrap();
        assert!(
            hit_row.split_whitespace().nth(2) == Some("1"),
            "got: {hit_row}"
        );
    }

    #[test]
    fn render_survives_jsonl_round_trip() {
        let records = sample_trace();
        let text = crate::jsonl::to_string(&[], &records);
        let parsed = crate::jsonl::parse_records(&text).unwrap();
        // Timing fields go through JSON; re-render must not panic and
        // keeps the structural content.
        let rendered = render(&parsed);
        assert!(rendered.contains("comm-add"));
    }
}
