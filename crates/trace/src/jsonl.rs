//! The JSONL sink: one JSON object per line, stable schema (documented
//! in `docs/TRACING.md`).
//!
//! Line types (`"type"` field):
//!
//! * `"meta"` — header line: `{"type":"meta","version":1,...}` plus
//!   caller-supplied context fields (proc name, thread count, knobs).
//! * `"B"` / `"E"` — span enter / exit: `id`, `parent` (enter only),
//!   `name` (enter only), `t_us`, `fields`.
//! * `"X"` — complete span: `id`, `parent`, `name`, `t_us`, `dur_us`,
//!   `fields`.
//! * `"ev"` — event: `span`, `name`, `t_us`, `fields`.
//!
//! `fields` is always an object; field order is the order they were
//! recorded. Parsing is tolerant of unknown line types (skipped), so
//! the schema can grow without breaking old readers.

use crate::json::{self, Json};
use crate::{Record, Value};

/// Schema version emitted on the meta line.
pub const SCHEMA_VERSION: u64 = 1;

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => {
            use std::fmt::Write as _;
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            use std::fmt::Write as _;
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => json::write_f64(out, *x),
        Value::Str(s) => json::write_str(out, s),
    }
}

fn write_fields(out: &mut String, fields: &[(String, Value)]) {
    out.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_str(out, k);
        out.push(':');
        write_value(out, v);
    }
    out.push('}');
}

fn write_opt_id(out: &mut String, id: Option<u64>) {
    use std::fmt::Write as _;
    match id {
        Some(id) => {
            let _ = write!(out, "{id}");
        }
        None => out.push_str("null"),
    }
}

/// Serializes one record to its JSONL line (no trailing newline).
pub fn record_line(record: &Record) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    match record {
        Record::Begin {
            id,
            parent,
            name,
            t_us,
            fields,
        } => {
            let _ = write!(out, "{{\"type\":\"B\",\"id\":{id},\"parent\":");
            write_opt_id(&mut out, *parent);
            out.push_str(",\"name\":");
            json::write_str(&mut out, name);
            let _ = write!(out, ",\"t_us\":{t_us},\"fields\":");
            write_fields(&mut out, fields);
            out.push('}');
        }
        Record::End { id, t_us, fields } => {
            let _ = write!(
                out,
                "{{\"type\":\"E\",\"id\":{id},\"t_us\":{t_us},\"fields\":"
            );
            write_fields(&mut out, fields);
            out.push('}');
        }
        Record::Complete {
            id,
            parent,
            name,
            t_us,
            dur_us,
            fields,
        } => {
            let _ = write!(out, "{{\"type\":\"X\",\"id\":{id},\"parent\":");
            write_opt_id(&mut out, *parent);
            out.push_str(",\"name\":");
            json::write_str(&mut out, name);
            let _ = write!(out, ",\"t_us\":{t_us},\"dur_us\":{dur_us},\"fields\":");
            write_fields(&mut out, fields);
            out.push('}');
        }
        Record::Event {
            span,
            name,
            t_us,
            fields,
        } => {
            out.push_str("{\"type\":\"ev\",\"span\":");
            write_opt_id(&mut out, *span);
            out.push_str(",\"name\":");
            json::write_str(&mut out, name);
            let _ = write!(out, ",\"t_us\":{t_us},\"fields\":");
            write_fields(&mut out, fields);
            out.push('}');
        }
    }
    out
}

/// Serializes a whole trace: a meta header line (schema version plus
/// the caller's context fields) followed by one line per record.
pub fn to_string(meta: &[(&str, Value)], records: &[Record]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(out, "{{\"type\":\"meta\",\"version\":{SCHEMA_VERSION}");
    for (k, v) in meta {
        out.push(',');
        json::write_str(&mut out, k);
        out.push(':');
        write_value(&mut out, v);
    }
    out.push_str("}\n");
    for record in records {
        out.push_str(&record_line(record));
        out.push('\n');
    }
    out
}

fn value_from_json(v: &Json) -> Result<Value, String> {
    match v {
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::Str(s) => Ok(Value::Str(s.clone())),
        Json::Num(n) => {
            if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 {
                Ok(Value::U64(*n as u64))
            } else if n.fract() == 0.0 && *n < 0.0 && *n >= i64::MIN as f64 {
                Ok(Value::I64(*n as i64))
            } else {
                Ok(Value::F64(*n))
            }
        }
        other => Err(format!("unsupported field value {other:?}")),
    }
}

fn fields_from_json(line: &Json) -> Result<Vec<(String, Value)>, String> {
    let Some(Json::Obj(map)) = line.get("fields") else {
        return Ok(Vec::new());
    };
    map.iter()
        .map(|(k, v)| Ok((k.clone(), value_from_json(v)?)))
        .collect()
}

fn req_u64(line: &Json, key: &str) -> Result<u64, String> {
    line.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing/invalid '{key}'"))
}

fn opt_u64(line: &Json, key: &str) -> Option<u64> {
    line.get(key).and_then(Json::as_u64)
}

fn req_str(line: &Json, key: &str) -> Result<String, String> {
    line.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing/invalid '{key}'"))
}

/// Parses a JSONL trace back into records. Meta lines and unknown line
/// types are skipped; blank lines are ignored. Field numbers come back
/// as [`Value::U64`] when whole and non-negative (the integer/float
/// distinction is not preserved through JSON).
pub fn parse_records(input: &str) -> Result<Vec<Record>, String> {
    let mut records = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let kind = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing 'type'", lineno + 1))?;
        let with_line = |e: String| format!("line {}: {e}", lineno + 1);
        match kind {
            "B" => records.push(Record::Begin {
                id: req_u64(&v, "id").map_err(with_line)?,
                parent: opt_u64(&v, "parent"),
                name: req_str(&v, "name").map_err(with_line)?,
                t_us: req_u64(&v, "t_us").map_err(with_line)?,
                fields: fields_from_json(&v).map_err(with_line)?,
            }),
            "E" => records.push(Record::End {
                id: req_u64(&v, "id").map_err(with_line)?,
                t_us: req_u64(&v, "t_us").map_err(with_line)?,
                fields: fields_from_json(&v).map_err(with_line)?,
            }),
            "X" => records.push(Record::Complete {
                id: req_u64(&v, "id").map_err(with_line)?,
                parent: opt_u64(&v, "parent"),
                name: req_str(&v, "name").map_err(with_line)?,
                t_us: req_u64(&v, "t_us").map_err(with_line)?,
                dur_us: req_u64(&v, "dur_us").map_err(with_line)?,
                fields: fields_from_json(&v).map_err(with_line)?,
            }),
            "ev" => records.push(Record::Event {
                span: opt_u64(&v, "span"),
                name: req_str(&v, "name").map_err(with_line)?,
                t_us: req_u64(&v, "t_us").map_err(with_line)?,
                fields: fields_from_json(&v).map_err(with_line)?,
            }),
            _ => {} // meta / future line types
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{field, Tracer};

    fn sample_records() -> Vec<Record> {
        let t = Tracer::new();
        let outer = t.span_fields("match", vec![field("proc", "f")]);
        t.event("ematch.axiom", || {
            vec![
                field("axiom", "mul4"),
                field("scanned", 12u64),
                field("ok", true),
            ]
        });
        t.complete_span("probe", None, 0.0, 2.0, vec![field("k", 3u32)]);
        outer.finish_fields(vec![field("rounds", 2u64)]);
        t.records()
    }

    #[test]
    fn records_round_trip_through_jsonl() {
        let records = sample_records();
        let text = to_string(&[("proc", Value::Str("f".into()))], &records);
        assert!(text.starts_with("{\"type\":\"meta\",\"version\":1,\"proc\":\"f\"}\n"));
        let parsed = parse_records(&text).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn every_line_is_valid_json() {
        let text = to_string(&[], &sample_records());
        for line in text.lines() {
            crate::json::parse(line).unwrap();
        }
    }

    #[test]
    fn unknown_line_types_are_skipped() {
        let text = "{\"type\":\"meta\",\"version\":1}\n{\"type\":\"future\",\"x\":1}\n";
        assert!(parse_records(text).unwrap().is_empty());
    }

    #[test]
    fn float_fields_survive() {
        let t = Tracer::new();
        t.event("e", || vec![field("ratio", 0.25), field("neg", -3i64)]);
        let records = t.records();
        let parsed = parse_records(&to_string(&[], &records)).unwrap();
        assert_eq!(parsed, records);
    }
}
