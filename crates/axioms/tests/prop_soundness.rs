//! Soundness of every built-in axiom: instantiate the quantified
//! variables with random 64-bit words and check that both sides evaluate
//! to the same value under the operation semantics.
//!
//! Axioms over memory values (`select`/`store`/`ldq`/`stq`) are checked
//! with small random memories instead of words.

use std::collections::HashMap;

use denali_axioms::{alpha_axioms, ia64_axioms, math_axioms, Axiom, AxiomBody};
use denali_prng::{forall, Rng};
use denali_term::value::{Env, Val};
use denali_term::{Op, Symbol, Term};

fn instantiate(term: &Term, values: &HashMap<Symbol, u64>) -> Term {
    term.substitute(&|v| values.get(&v).map(|&x| Term::constant(x)))
}

/// Variables appearing as the *memory* argument (first argument of
/// select/store) anywhere in the axiom must be bound to memory values.
fn memory_vars(term: &Term, out: &mut Vec<Symbol>) {
    if let Op::Sym(s) = term.op() {
        if ["select", "store", "ldq", "stq"].contains(&s.as_str()) {
            if let Op::Var(v) = term.args()[0].op() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
    }
    for a in term.args() {
        memory_vars(a, out);
    }
}

fn axiom_terms(axiom: &Axiom) -> Vec<(bool, Term, Term)> {
    match &axiom.body {
        AxiomBody::Equal(l, r) => vec![(true, l.clone(), r.clone())],
        AxiomBody::Distinct(l, r) => vec![(false, l.clone(), r.clone())],
        AxiomBody::Clause(lits) => lits.clone(),
    }
}

fn check_axiom(axiom: &Axiom, raw: &[u64]) -> Result<(), String> {
    let vars = axiom.body_vars();
    let mut values = HashMap::new();
    for (i, &v) in vars.iter().enumerate() {
        values.insert(v, raw[i % raw.len()].wrapping_add(i as u64));
    }
    // Respect the side condition: if it fails for these values the axiom
    // simply does not apply.
    if let Some(cond) = &axiom.condition {
        let vs: Vec<u64> = cond.vars.iter().map(|v| values[v]).collect();
        if !(cond.pred)(&vs) {
            return Ok(());
        }
    }

    let mut mem_vars = Vec::new();
    for (_, l, r) in axiom_terms(axiom) {
        memory_vars(&l, &mut mem_vars);
        memory_vars(&r, &mut mem_vars);
    }

    let mut env = Env::new();
    for &mv in &mem_vars {
        // Bind memory variables to a small pseudo-random memory derived
        // from the word values.
        let mut mem = HashMap::new();
        for (i, &w) in raw.iter().enumerate() {
            mem.insert(w, w.wrapping_mul(31).wrapping_add(i as u64));
        }
        env.set_mem(mv.as_str(), mem);
        values.remove(&mv);
    }

    let eval = |t: &Term| -> Result<Val, String> {
        let inst = instantiate(t, &values);
        // Remaining variables are memory variables (leaf lookups).
        let inst = inst.substitute(&|v| mem_vars.contains(&v).then(|| Term::leaf(v)));
        env.eval(&inst).map_err(|e| format!("{e}"))
    };

    // The axiom holds if: every Equal literal set is consistent — for an
    // Equal body both sides match; for a Clause, at least one literal
    // holds.
    let lits = axiom_terms(axiom);
    let mut clause_holds = false;
    let is_clause = matches!(axiom.body, AxiomBody::Clause(_));
    for (is_eq, l, r) in &lits {
        let lv = eval(l)?;
        let rv = eval(r)?;
        let equal = lv == rv;
        if is_clause {
            if equal == *is_eq {
                clause_holds = true;
            }
        } else if *is_eq && !equal {
            return Err(format!(
                "axiom {} violated: {l} != {r} under {values:?}",
                axiom.name
            ));
        }
        // Distinct axioms (is_eq == false, non-clause) assert *semantic*
        // disequality only for particular models; the built-in sets
        // contain none, so nothing to check.
    }
    if is_clause && !clause_holds {
        return Err(format!(
            "clause axiom {} violated under {values:?}",
            axiom.name
        ));
    }
    Ok(())
}

fn random_words(rng: &mut Rng) -> Vec<u64> {
    (0..6).map(|_| rng.next_u64()).collect()
}

#[test]
fn math_axioms_are_sound() {
    forall("math_axioms_are_sound", 256, |rng| {
        let raw = random_words(rng);
        for axiom in math_axioms() {
            if let Err(msg) = check_axiom(&axiom, &raw) {
                panic!("{msg}");
            }
        }
    });
}

#[test]
fn alpha_axioms_are_sound() {
    forall("alpha_axioms_are_sound", 256, |rng| {
        let raw = random_words(rng);
        for axiom in alpha_axioms() {
            if let Err(msg) = check_axiom(&axiom, &raw) {
                panic!("{msg}");
            }
        }
    });
}

#[test]
fn ia64_axioms_are_sound() {
    forall("ia64_axioms_are_sound", 256, |rng| {
        let raw = random_words(rng);
        for axiom in ia64_axioms() {
            if let Err(msg) = check_axiom(&axiom, &raw) {
                panic!("{msg}");
            }
        }
    });
}

#[test]
fn ia64_axioms_are_sound_on_field_shapes() {
    forall("ia64_axioms_are_sound_on_field_shapes", 256, |rng| {
        // Masks of the shape the extr/dep conditions accept.
        let w = rng.next_u64();
        let p = rng.below(64);
        let k = rng.range(1, 64);
        let m = (1u64 << k).wrapping_sub(1);
        for axiom in ia64_axioms() {
            if let Err(msg) = check_axiom(&axiom, &[w, p, m, w ^ m, p, m]) {
                panic!("{msg}");
            }
        }
    });
}

#[test]
fn axioms_are_sound_on_small_byte_indices() {
    forall("axioms_are_sound_on_small_byte_indices", 256, |rng| {
        // Byte axioms with realistic indices (the interesting range).
        let a = rng.next_u64();
        let i = rng.below(8);
        let j = rng.below(8);
        for axiom in alpha_axioms() {
            if let Err(msg) = check_axiom(&axiom, &[a, i, j, a ^ 0xff, i, j]) {
                panic!("{msg}");
            }
        }
    });
}
