//! Differential equivalence of delta-driven and full re-matching:
//! saturation must apply the identical instance sequence — and therefore
//! build a byte-identical e-graph — whether each round re-matches the
//! whole e-graph or only the dirty cone, at any thread count.
//!
//! Class ids are assigned in insertion order, so the per-class Debug
//! snapshot pins not just the final shape but the *order* instances were
//! applied in; any divergence in the applied sequence shows up as
//! differently numbered classes.

use denali_axioms::{
    alpha_axioms, ia64_axioms, math_axioms, saturate, standard_axioms, Axiom, SaturationLimits,
    SaturationReport,
};
use denali_egraph::{ClassId, EGraph};
use denali_prng::{forall, Rng};
use denali_term::{sexpr, Term};

fn limits(delta: bool, threads: usize) -> SaturationLimits {
    SaturationLimits {
        max_iterations: 6,
        max_nodes: 3_000,
        max_structural_per_round: 300,
        max_structural_growth: 800,
        threads,
        delta_match: delta,
        ..SaturationLimits::default()
    }
}

/// Full structural snapshot: every class id with its canonicalized node
/// list (sorted for stable comparison), plus node/class counts.
fn snapshot(eg: &EGraph) -> (Vec<String>, usize, usize) {
    let mut classes: Vec<String> = eg
        .classes()
        .iter()
        .map(|&c| format!("{c:?} -> {:?}", eg.nodes(c)))
        .collect();
    classes.sort();
    (classes, eg.num_nodes(), eg.num_classes())
}

fn run(
    term: &Term,
    axioms: &[Axiom],
    limits: &SaturationLimits,
) -> ((Vec<String>, usize, usize), ClassId, SaturationReport) {
    let mut eg = EGraph::new();
    let goal = eg.add_term(term).unwrap();
    let report = saturate(&mut eg, axioms, limits).unwrap();
    (snapshot(&eg), eg.find(goal), report)
}

fn assert_equivalent(
    term: &Term,
    axioms: &[Axiom],
    full: &SaturationLimits,
    delta: &SaturationLimits,
) {
    let (fsnap, fgoal, freport) = run(term, axioms, full);
    let (dsnap, dgoal, dreport) = run(term, axioms, delta);
    assert_eq!(fsnap, dsnap, "e-graph diverged for {term}");
    assert_eq!(fgoal, dgoal, "goal class diverged for {term}");
    assert_eq!(
        (freport.iterations, freport.instances, freport.saturated),
        (dreport.iterations, dreport.instances, dreport.saturated),
        "report diverged for {term}"
    );
    // Either mode accounts for the same per-round candidate universe
    // only on full rounds; globally, whatever delta skipped it must
    // never have needed: same instances, above.
    assert_eq!(freport.skipped_candidates, 0);
}

/// Random goal expressions over two inputs (the same shape as the
/// incremental-search property test).
fn random_term(rng: &mut Rng, depth: usize) -> Term {
    if depth == 0 || rng.below(4) == 0 {
        return match rng.below(3) {
            0 => Term::leaf("a"),
            1 => Term::leaf("b"),
            _ => Term::constant(rng.below(256)),
        };
    }
    let args = |rng: &mut Rng| vec![random_term(rng, depth - 1), random_term(rng, depth - 1)];
    match rng.below(8) {
        0 => Term::call("add64", args(rng)),
        1 => Term::call("sub64", args(rng)),
        2 => Term::call("and64", args(rng)),
        3 => Term::call("or64", args(rng)),
        4 => Term::call("xor64", args(rng)),
        5 => Term::call(
            "shl64",
            vec![random_term(rng, depth - 1), Term::constant(rng.below(64))],
        ),
        6 => Term::call(
            "selectb",
            vec![random_term(rng, depth - 1), Term::constant(rng.below(8))],
        ),
        _ => Term::call("cmpult", args(rng)),
    }
}

#[test]
fn delta_matches_full_on_random_terms_at_1_and_4_threads() {
    let axioms = standard_axioms();
    forall("delta_matches_full_on_random_terms", 24, |rng| {
        let term = random_term(rng, 3);
        for threads in [1, 4] {
            assert_equivalent(&term, &axioms, &limits(false, 1), &limits(true, threads));
        }
    });
}

#[test]
fn delta_matches_full_across_builtin_axiom_sets() {
    let fixed = [
        "(add64 (mul64 reg6 4) 1)",
        "(add64 a (add64 b (add64 c (add64 d e))))",
        "(storeb (storeb 0 0 (selectb a 3)) 3 (selectb a 0))",
        "(select (store M p x) (add64 p 8))",
    ];
    let sets: [(&str, Vec<Axiom>); 4] = [
        ("math", math_axioms()),
        ("alpha", alpha_axioms()),
        ("ia64", ia64_axioms()),
        ("standard", standard_axioms()),
    ];
    for (name, axioms) in &sets {
        for src in fixed {
            let term = Term::from_sexpr(&sexpr::parse_one(src).unwrap(), &[]).unwrap();
            for threads in [1, 4] {
                let full = limits(false, 1);
                let delta = limits(true, threads);
                let (fsnap, _, freport) = run(&term, axioms, &full);
                let (dsnap, _, dreport) = run(&term, axioms, &delta);
                assert_eq!(fsnap, dsnap, "axiom set {name}, term {src}");
                assert_eq!(freport.instances, dreport.instances, "{name}/{src}");
                assert_eq!(freport.iterations, dreport.iterations, "{name}/{src}");
            }
        }
    }
}

#[test]
fn delta_matches_full_under_tight_budgets() {
    // Budget truncation discards matches mid-round; the delta path must
    // fall back to a full rescan to re-find them, keeping the applied
    // sequence identical.
    let axioms = standard_axioms();
    forall("delta_matches_full_under_tight_budgets", 12, |rng| {
        let term = random_term(rng, 3);
        let full = SaturationLimits {
            max_instances_per_round: 1 + rng.below(40) as usize,
            max_structural_per_round: 1 + rng.below(20) as usize,
            ..limits(false, 1)
        };
        let delta = SaturationLimits {
            delta_match: true,
            ..full
        };
        assert_equivalent(&term, &axioms, &full, &delta);
    });
}
