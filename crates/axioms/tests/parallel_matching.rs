//! Determinism of the parallel matcher: saturation must produce a
//! byte-identical e-graph at every thread count.
//!
//! The matching pass is a read-only fan-out over a frozen e-graph with
//! results recombined in axiom order, so the applied instance sequence —
//! and therefore class structure, node counts, and represented ways —
//! cannot depend on scheduling.

use denali_axioms::{saturate, standard_axioms, SaturationLimits};
use denali_egraph::{ClassId, EGraph};
use denali_term::{sexpr, Term};

fn seed_terms() -> Vec<Term> {
    [
        "(add64 (mul64 reg6 4) 1)",
        "(add64 a (add64 b (add64 c (add64 d e))))",
        "(storeb (storeb 0 0 (selectb a 3)) 3 (selectb a 0))",
    ]
    .iter()
    .map(|s| Term::from_sexpr(&sexpr::parse_one(s).unwrap(), &[]).unwrap())
    .collect()
}

/// A full structural snapshot: every class with its canonicalized node
/// list, sorted, plus the goal's way count.
fn snapshot(eg: &EGraph, goal: ClassId) -> (Vec<String>, u128, usize, usize) {
    let mut classes: Vec<String> = eg
        .classes()
        .iter()
        .map(|&c| format!("{c:?} -> {:?}", eg.nodes(c)))
        .collect();
    classes.sort();
    (
        classes,
        eg.count_ways(goal, 6),
        eg.num_nodes(),
        eg.num_classes(),
    )
}

#[test]
fn saturation_is_identical_at_every_thread_count() {
    let axioms = standard_axioms();
    for term in seed_terms() {
        let mut reference = None;
        for threads in [1usize, 2, 3, 4, 8] {
            let limits = SaturationLimits {
                threads,
                ..SaturationLimits::default()
            };
            let mut eg = EGraph::new();
            let goal = eg.add_term(&term).unwrap();
            let report = saturate(&mut eg, &axioms, &limits).unwrap();
            let snap = (snapshot(&eg, goal), report.instances, report.iterations);
            match &reference {
                None => reference = Some(snap),
                Some(expect) => assert_eq!(
                    &snap, expect,
                    "thread count {threads} changed saturation of {term}"
                ),
            }
        }
    }
}

#[test]
fn zero_threads_means_auto_and_stays_deterministic() {
    let axioms = standard_axioms();
    let term = seed_terms().remove(0);
    let run = |threads: usize| {
        let limits = SaturationLimits {
            threads,
            ..SaturationLimits::default()
        };
        let mut eg = EGraph::new();
        let goal = eg.add_term(&term).unwrap();
        saturate(&mut eg, &axioms, &limits).unwrap();
        snapshot(&eg, goal)
    };
    assert_eq!(run(0), run(1));
}
