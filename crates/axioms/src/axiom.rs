//! The axiom representation and the paper's LISP-like axiom syntax.

use std::fmt;

use denali_term::{Sexpr, Symbol, Term};

/// What an axiom asserts once instantiated.
#[derive(Clone, Debug)]
pub enum AxiomBody {
    /// `lhs = rhs`: instantiate both sides and merge their classes.
    Equal(Term, Term),
    /// `lhs ≠ rhs`: instantiate both sides and constrain their classes
    /// to be uncombinable.
    Distinct(Term, Term),
    /// A disjunction of equality (`true`) / distinction (`false`)
    /// literals, recorded in the e-graph for deferred unit assertion.
    Clause(Vec<(bool, Term, Term)>),
}

/// A predicate over the constant values bound to pattern variables.
///
/// Side conditions implement, for ground constants, facts that would
/// otherwise need clause plumbing: e.g. the byte-index disequality `i ≠ j`
/// guarding `mskbl(insbl(x, j), i) = insbl(x, j)`.
#[derive(Clone)]
pub struct SideCondition {
    /// Variables whose classes must have known constant values.
    pub vars: Vec<Symbol>,
    /// Predicate applied to the constants, in `vars` order.
    pub pred: fn(&[u64]) -> bool,
    /// Human-readable description for diagnostics.
    pub description: &'static str,
}

impl fmt::Debug for SideCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SideCondition({})", self.description)
    }
}

/// How eagerly the matcher should instantiate an axiom.
///
/// *Defining* axioms give meaning to operations (architectural
/// definitions, algebraic identities with a clear direction) and are
/// instantiated freely. *Structural* axioms (commutativity,
/// associativity) permute and regroup existing terms; unchecked they
/// make saturation diverge, so the engine budgets them per round — one
/// of the paper's "heuristics that are designed to keep the matcher
/// from running forever".
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AxiomPriority {
    /// Instantiate freely.
    #[default]
    Defining,
    /// Instantiate under the per-round structural budget.
    Structural,
}

/// A quantified fact used by the matcher.
///
/// `patterns` are the triggers (the paper's `pats`): the matcher looks
/// for instances of each pattern in the e-graph, and every match that
/// binds all the axiom's variables (and passes the side condition)
/// produces an instantiation of the body.
#[derive(Clone, Debug)]
pub struct Axiom {
    /// Diagnostic name (e.g. `"add64-comm"`).
    pub name: String,
    /// The quantified variables.
    pub vars: Vec<Symbol>,
    /// Trigger patterns.
    pub patterns: Vec<Term>,
    /// The asserted fact.
    pub body: AxiomBody,
    /// Optional constraint on matched constants.
    pub condition: Option<SideCondition>,
    /// Instantiation priority.
    pub priority: AxiomPriority,
}

impl Axiom {
    /// Builds an unconditional equality axiom with the left-hand side as
    /// its trigger pattern.
    pub fn equality(name: &str, vars: &[&str], lhs: Term, rhs: Term) -> Axiom {
        Axiom {
            name: name.to_owned(),
            vars: vars.iter().map(|v| Symbol::intern(v)).collect(),
            patterns: vec![lhs.clone()],
            body: AxiomBody::Equal(lhs, rhs),
            condition: None,
            priority: AxiomPriority::Defining,
        }
    }

    /// Marks the axiom as structural (budgeted instantiation).
    pub fn structural(mut self) -> Axiom {
        self.priority = AxiomPriority::Structural;
        self
    }

    /// Adds a side condition.
    pub fn with_condition(
        mut self,
        vars: &[&str],
        description: &'static str,
        pred: fn(&[u64]) -> bool,
    ) -> Axiom {
        self.condition = Some(SideCondition {
            vars: vars.iter().map(|v| Symbol::intern(v)).collect(),
            pred,
            description,
        });
        self
    }

    /// Adds an extra trigger pattern.
    pub fn with_pattern(mut self, pattern: Term) -> Axiom {
        self.patterns.push(pattern);
        self
    }

    /// Every variable mentioned by the body.
    pub fn body_vars(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        let mut push = |t: &Term| {
            for v in t.vars() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        };
        match &self.body {
            AxiomBody::Equal(l, r) | AxiomBody::Distinct(l, r) => {
                push(l);
                push(r);
            }
            AxiomBody::Clause(lits) => {
                for (_, l, r) in lits {
                    push(l);
                    push(r);
                }
            }
        }
        out
    }

    /// Parses an axiom from the paper's LISP-like syntax:
    ///
    /// ```text
    /// (\axiom (forall (a b) (pats (carry a b))
    ///   (eq (carry a b) (\cmpult (\add64 a b) a))))
    /// ```
    ///
    /// The `pats` group is optional (the left-hand side of the body's
    /// first literal is used by default), as is the quantifier (ground
    /// axioms are allowed). The body may be `(eq l r)`, `(ne l r)`, or
    /// `(or literal...)`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseAxiomError`] on malformed input.
    pub fn parse_sexpr(form: &Sexpr, name: &str) -> Result<Axiom, ParseAxiomError> {
        let form = form.strip_backslashes();
        let items = form
            .as_list()
            .ok_or_else(|| ParseAxiomError::new("axiom must be a list"))?;
        // Accept both `(axiom ...)` and the bare `...` payload.
        let payload: &[Sexpr] = match items.first() {
            Some(head) if head.is_keyword("axiom") => &items[1..],
            _ => items,
        };
        let [body] = payload else {
            return Err(ParseAxiomError::new(format!(
                "axiom must contain exactly one form, found {}",
                payload.len()
            )));
        };

        let (vars, pats, body_form) = match body.as_list() {
            Some(parts) if parts.first().is_some_and(|h| h.is_keyword("forall")) => {
                let [_, var_list, rest @ ..] = parts else {
                    return Err(ParseAxiomError::new("malformed forall"));
                };
                let vars = var_list
                    .as_list()
                    .ok_or_else(|| ParseAxiomError::new("forall variables must be a list"))?
                    .iter()
                    .map(|v| {
                        v.as_atom()
                            .map(Symbol::intern)
                            .ok_or_else(|| ParseAxiomError::new("variable must be an atom"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                match rest {
                    [pats_form, body_form]
                        if pats_form
                            .as_list()
                            .and_then(|l| l.first())
                            .is_some_and(|h| h.is_keyword("pats")) =>
                    {
                        let pats = pats_form.as_list().expect("checked")[1..]
                            .iter()
                            .map(|p| Term::from_sexpr(p, &vars))
                            .collect::<Result<Vec<_>, _>>()
                            .map_err(ParseAxiomError::new)?;
                        (vars, pats, body_form)
                    }
                    [body_form] => (vars, Vec::new(), body_form),
                    _ => return Err(ParseAxiomError::new("malformed forall body")),
                }
            }
            _ => (Vec::new(), Vec::new(), body),
        };

        let body = parse_body(body_form, &vars)?;
        let mut patterns = pats;
        if patterns.is_empty() {
            // Default trigger: the left-hand side of the first literal.
            let default = match &body {
                AxiomBody::Equal(l, _) | AxiomBody::Distinct(l, _) => l.clone(),
                AxiomBody::Clause(lits) => lits
                    .first()
                    .ok_or_else(|| ParseAxiomError::new("empty clause"))?
                    .1
                    .clone(),
            };
            patterns.push(default);
        }
        Ok(Axiom {
            name: name.to_owned(),
            vars,
            patterns,
            body,
            condition: None,
            priority: AxiomPriority::Defining,
        })
    }
}

fn parse_body(form: &Sexpr, vars: &[Symbol]) -> Result<AxiomBody, ParseAxiomError> {
    let items = form
        .as_list()
        .ok_or_else(|| ParseAxiomError::new("axiom body must be a list"))?;
    let head = items
        .first()
        .and_then(Sexpr::as_atom)
        .ok_or_else(|| ParseAxiomError::new("axiom body must start with eq/ne/or"))?;
    let terms = |rest: &[Sexpr]| -> Result<Vec<Term>, ParseAxiomError> {
        rest.iter()
            .map(|s| Term::from_sexpr(s, vars).map_err(ParseAxiomError::new))
            .collect()
    };
    match head {
        "eq" | "ne" => {
            let ts = terms(&items[1..])?;
            let [l, r] = ts.as_slice() else {
                return Err(ParseAxiomError::new(format!("{head} needs two terms")));
            };
            Ok(if head == "eq" {
                AxiomBody::Equal(l.clone(), r.clone())
            } else {
                AxiomBody::Distinct(l.clone(), r.clone())
            })
        }
        "or" => {
            let mut lits = Vec::new();
            for lit in &items[1..] {
                let parts = lit
                    .as_list()
                    .ok_or_else(|| ParseAxiomError::new("clause literal must be a list"))?;
                let lhead = parts
                    .first()
                    .and_then(Sexpr::as_atom)
                    .ok_or_else(|| ParseAxiomError::new("literal must start with eq/ne"))?;
                let ts = terms(&parts[1..])?;
                let [l, r] = ts.as_slice() else {
                    return Err(ParseAxiomError::new("literal needs two terms"));
                };
                match lhead {
                    "eq" => lits.push((true, l.clone(), r.clone())),
                    "ne" => lits.push((false, l.clone(), r.clone())),
                    other => {
                        return Err(ParseAxiomError::new(format!(
                            "unknown literal head {other}"
                        )))
                    }
                }
            }
            Ok(AxiomBody::Clause(lits))
        }
        other => Err(ParseAxiomError::new(format!("unknown axiom body {other}"))),
    }
}

/// Axiom syntax error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseAxiomError {
    message: String,
}

impl ParseAxiomError {
    fn new(message: impl Into<String>) -> ParseAxiomError {
        ParseAxiomError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseAxiomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ParseAxiomError {}

#[cfg(test)]
mod tests {
    use super::*;
    use denali_term::sexpr;

    fn parse(text: &str) -> Axiom {
        Axiom::parse_sexpr(&sexpr::parse_one(text).unwrap(), "test").unwrap()
    }

    #[test]
    fn parses_figure6_carry_axiom() {
        let ax = parse(
            "(\\axiom (forall (a b) (pats (carry a b))
               (eq (carry a b) (\\cmpult (\\add64 a b) a))))",
        );
        assert_eq!(ax.vars.len(), 2);
        assert_eq!(ax.patterns.len(), 1);
        assert_eq!(ax.patterns[0].to_string(), "(carry ?a ?b)");
        match &ax.body {
            AxiomBody::Equal(l, r) => {
                assert_eq!(l.to_string(), "(carry ?a ?b)");
                assert_eq!(r.to_string(), "(cmpult (add64 ?a ?b) ?a)");
            }
            other => panic!("expected equality, got {other:?}"),
        }
    }

    #[test]
    fn default_pattern_is_lhs() {
        let ax = parse("(axiom (forall (a b) (eq (add a b) (add b a))))");
        assert_eq!(ax.patterns.len(), 1);
        assert_eq!(ax.patterns[0].to_string(), "(add ?a ?b)");
    }

    #[test]
    fn parses_ground_axiom() {
        let ax = parse("(axiom (eq (f x) (g x)))");
        assert!(ax.vars.is_empty());
        assert!(!ax.patterns[0].has_vars());
    }

    #[test]
    fn parses_clause_and_distinction() {
        let ax = parse(
            "(axiom (forall (a i j x)
               (pats (select (store a i x) j))
               (or (eq i j)
                   (eq (select (store a i x) j) (select a j)))))",
        );
        match &ax.body {
            AxiomBody::Clause(lits) => {
                assert_eq!(lits.len(), 2);
                assert!(lits[0].0);
            }
            other => panic!("expected clause, got {other:?}"),
        }
        let ne = parse("(axiom (forall (x) (ne (f x) (g x))))");
        assert!(matches!(ne.body, AxiomBody::Distinct(_, _)));
    }

    #[test]
    fn rejects_malformed_axioms() {
        let bad = [
            "(axiom)",
            "(axiom (zz a b))",
            "(axiom (eq a))",
            "(axiom (forall x (eq a b)))",
        ];
        for text in bad {
            let form = sexpr::parse_one(text).unwrap();
            assert!(Axiom::parse_sexpr(&form, "bad").is_err(), "{text}");
        }
    }

    #[test]
    fn body_vars_collects_from_all_literals() {
        let ax = parse("(axiom (forall (a b c) (or (eq a b) (ne b c))))");
        assert_eq!(ax.body_vars().len(), 3);
    }

    #[test]
    fn builder_helpers() {
        let ax = Axiom::equality(
            "t",
            &["x"],
            Term::call("f", vec![Term::var("x")]),
            Term::var("x"),
        )
        .with_pattern(Term::var("x"))
        .with_condition(&["x"], "x != 0", |vs| vs[0] != 0);
        assert_eq!(ax.patterns.len(), 2);
        assert!(ax.condition.is_some());
        assert!(!format!("{ax:?}").is_empty());
    }
}
