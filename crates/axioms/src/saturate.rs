//! The matching phase: saturate an e-graph with axiom instances.
//!
//! "The matcher repeatedly transforms the E-graph by instantiating a
//! relevant axiom and asserting the instance in the E-graph. This is
//! repeated until a quiescent state is reached in which the E-graph
//! records all relevant instances of axioms." (§5)

use std::collections::{HashMap, HashSet};

use denali_egraph::{ematch, ClassId, EGraph, EGraphError, EqLiteral};
use denali_term::{Op, Symbol, Term};

use crate::axiom::{Axiom, AxiomBody, AxiomPriority};

/// Budgets that keep the matcher from running forever (the paper's
/// caveat: heuristics may stop it before true quiescence, which is one
/// reason Denali's output is "near-optimal" rather than "optimal").
#[derive(Clone, Copy, Debug)]
pub struct SaturationLimits {
    /// Maximum number of match-apply rounds.
    pub max_iterations: usize,
    /// Stop once the e-graph holds this many e-nodes.
    pub max_nodes: usize,
    /// Maximum axiom instances applied per round.
    pub max_instances_per_round: usize,
    /// Maximum *structural* (commutativity/associativity) instances
    /// applied per round; these regroup terms without adding meaning and
    /// are the main driver of saturation divergence.
    pub max_structural_per_round: usize,
    /// Introduce `pow(2, k)` nodes into power-of-two constant classes
    /// (the paper's `4 = 2**2` step in Figure 2).
    pub pow2_facts: bool,
    /// Node-growth allowance for the structural (AC-closure) phase,
    /// beyond the size the semantic phase reached. The AC closure of a
    /// mixed-decomposition e-graph is astronomically large; this is the
    /// principal "stop the matcher" heuristic and the main reason output
    /// is "near-optimal" rather than "optimal".
    pub max_structural_growth: usize,
    /// Threads for the read-only e-matching pass of every round (`0`
    /// means one per available CPU). The e-graph is frozen while axioms
    /// are matched, so patterns can match concurrently; instances are
    /// then applied serially in axiom order, making the result
    /// byte-identical to the serial path at any thread count.
    pub threads: usize,
}

impl Default for SaturationLimits {
    fn default() -> SaturationLimits {
        SaturationLimits {
            max_iterations: 16,
            max_nodes: 20_000,
            max_instances_per_round: 10_000,
            max_structural_per_round: 1500,
            pow2_facts: true,
            max_structural_growth: 4000,
            threads: 1,
        }
    }
}

/// What the saturation run did.
#[derive(Clone, Copy, Default, Debug)]
pub struct SaturationReport {
    /// Rounds executed.
    pub iterations: usize,
    /// Axiom instances asserted.
    pub instances: usize,
    /// True if a quiescent state was reached within the budgets.
    pub saturated: bool,
    /// Final e-node count.
    pub nodes: usize,
    /// Final class count.
    pub classes: usize,
}

/// True if the axiom's equality right-hand side introduces at most one
/// new node (an operator applied directly to bound variables and
/// constants). Such axioms cannot cascade: applying them to a class adds
/// a bounded number of nodes.
fn simple_rhs(axiom: &Axiom) -> bool {
    match &axiom.body {
        AxiomBody::Equal(_, rhs) => rhs.args().iter().all(|a| a.args().is_empty()),
        _ => false,
    }
}

/// Saturates `egraph` with instances of `axioms` until quiescence or
/// until a budget in `limits` is exhausted.
///
/// Saturation runs in two phases, which is how this reproduction
/// realizes the paper's "heuristics that are designed to keep the
/// matcher from running forever":
///
/// 1. **Semantic phase** — every non-structural axiom (definitions,
///    expansions, simplifications) runs to quiescence on the original
///    term structure.
/// 2. **Structural phase** — commutativity/associativity instances plus
///    the *simple* defining axioms (those whose right-hand side is a
///    single operator over bound variables, e.g. the `or64 → bis`
///    bridges) compute the AC closure. Excluding the expansion axioms
///    here prevents the cascade where every new regrouping re-triggers
///    mask/shift expansions of its subterms.
///
/// # Errors
///
/// Propagates contradictions from the e-graph (which indicate an unsound
/// axiom set).
pub fn saturate(
    egraph: &mut EGraph,
    axioms: &[Axiom],
    limits: &SaturationLimits,
) -> Result<SaturationReport, EGraphError> {
    let phase1: Vec<Axiom> = axioms
        .iter()
        .filter(|a| a.priority != AxiomPriority::Structural)
        .cloned()
        .collect();
    let phase2: Vec<Axiom> = axioms
        .iter()
        .filter(|a| a.priority == AxiomPriority::Structural || simple_rhs(a))
        .cloned()
        .collect();
    let r1 = saturate_phase(egraph, &phase1, limits)?;
    let phase2_limits = SaturationLimits {
        max_iterations: limits.max_iterations.min(8),
        max_nodes: limits
            .max_nodes
            .min(egraph.num_nodes() + limits.max_structural_growth),
        ..*limits
    };
    let r2 = saturate_phase(egraph, &phase2, &phase2_limits)?;
    Ok(SaturationReport {
        iterations: r1.iterations + r2.iterations,
        instances: r1.instances + r2.instances,
        saturated: r1.saturated && r2.saturated,
        nodes: r2.nodes,
        classes: r2.classes,
    })
}

/// Canonicalized dedup key for one axiom instance: the substitution with
/// every class representative resolved, in sorted variable order.
type Key = Vec<(Symbol, ClassId)>;

fn saturate_phase(
    egraph: &mut EGraph,
    axioms: &[Axiom],
    limits: &SaturationLimits,
) -> Result<SaturationReport, EGraphError> {
    let mut report = SaturationReport::default();
    let mut applied: HashSet<(usize, Vec<(Symbol, ClassId)>)> = HashSet::new();
    let mut pow2_done: HashSet<u64> = HashSet::new();

    let trace = std::env::var_os("DENALI_TRACE").is_some();
    egraph.rebuild()?;
    for _ in 0..limits.max_iterations {
        report.iterations += 1;
        let round_start = std::time::Instant::now();
        let mut any_change = false;

        // Dynamic constant facts: for every constant class holding a
        // power of two, record c = pow(2, log2 c) so patterns like
        // k * 2**n can match literal constants; for byte-shift amounts
        // (multiples of 8 below 64) record c = 8 * (c/8) so the
        // byte-instruction definitions (insbl = selectb << 8*i) can
        // match literal shift counts.
        if limits.pow2_facts {
            let constants: Vec<u64> = egraph
                .classes()
                .iter()
                .filter_map(|&c| egraph.constant(c))
                .collect();
            for c in constants {
                if !pow2_done.insert(c) {
                    continue;
                }
                if c.is_power_of_two() && c >= 2 {
                    let k = c.trailing_zeros() as u64;
                    let pow = Term::call("pow", vec![Term::constant(2), Term::constant(k)]);
                    // Adding the term folds it into c's class eagerly.
                    egraph.add_term(&pow).expect("ground term");
                    any_change = true;
                }
                if c % 8 == 0 && c < 64 {
                    let shift = Term::call("mul64", vec![Term::constant(8), Term::constant(c / 8)]);
                    egraph.add_term(&shift).expect("ground term");
                    any_change = true;
                }
            }
            egraph.rebuild()?;
        }

        // Collect matches for this round. The e-graph is frozen here, so
        // the e-matching pass is a pure read-only fan-out: every
        // (axiom, pattern) pair is matched concurrently (including
        // body-variable/side-condition filtering and canonical-key
        // computation, which only read the e-graph), and the results come
        // back in work order. The stateful parts — the cross-round
        // `applied` dedup, the per-round instance budget, and the
        // structural queues — are then replayed serially in exactly the
        // order the serial implementation uses, so the applied instance
        // set is byte-identical at any thread count.
        let match_work: Vec<(usize, &Term)> = axioms
            .iter()
            .enumerate()
            .flat_map(|(i, axiom)| axiom.patterns.iter().map(move |p| (i, p)))
            .collect();
        let frozen: &EGraph = egraph;
        let match_results: Vec<Vec<(HashMap<Symbol, ClassId>, Key)>> = denali_par::map_indexed(
            denali_par::resolve_threads(limits.threads),
            &match_work,
            |_, &(i, pattern)| {
                let axiom = &axioms[i];
                let body_vars = axiom.body_vars();
                let mut out = Vec::new();
                for (_, subst) in ematch(frozen, pattern) {
                    if !body_vars.iter().all(|v| subst.contains_key(v)) {
                        continue; // pattern does not bind every body variable
                    }
                    if let Some(cond) = &axiom.condition {
                        let values: Option<Vec<u64>> = cond
                            .vars
                            .iter()
                            .map(|v| subst.get(v).and_then(|&c| frozen.constant(c)))
                            .collect();
                        match values {
                            Some(vs) if (cond.pred)(&vs) => {}
                            _ => continue,
                        }
                    }
                    let mut key: Key = subst.iter().map(|(&v, &c)| (v, frozen.find(c))).collect();
                    key.sort();
                    out.push((subst, key));
                }
                out
            },
        );

        // Serial replay: budget accounting and deduplication in axiom
        // order. Structural (associativity-style) instances are budgeted
        // and shared fairly across axioms so they cannot starve each
        // other or blow the e-graph up.
        let mut instances: Vec<(usize, HashMap<Symbol, ClassId>)> = Vec::new();
        let mut structural_queues: Vec<Vec<(usize, HashMap<Symbol, ClassId>)>> = Vec::new();
        let mut results = match_results.into_iter();
        'axioms: for (i, axiom) in axioms.iter().enumerate() {
            let is_structural = axiom.priority == AxiomPriority::Structural;
            let mut queue = Vec::new();
            for _ in &axiom.patterns {
                let pattern_matches = results.next().expect("one result per pattern");
                if instances.len() >= limits.max_instances_per_round {
                    break 'axioms;
                }
                for (subst, key) in pattern_matches {
                    if applied.contains(&(i, key.clone())) {
                        continue;
                    }
                    if is_structural {
                        queue.push((i, subst));
                        // Deduplication happens when the instance is
                        // actually taken from the queue below.
                        continue;
                    }
                    applied.insert((i, key));
                    instances.push((i, subst));
                    if instances.len() >= limits.max_instances_per_round {
                        break;
                    }
                }
            }
            if !queue.is_empty() {
                structural_queues.push(queue);
            }
        }
        // Round-robin the structural budget across axioms.
        let mut budget = limits.max_structural_per_round;
        let mut cursors = vec![0usize; structural_queues.len()];
        while budget > 0 {
            let mut advanced = false;
            for (q, queue) in structural_queues.iter().enumerate() {
                if budget == 0 {
                    break;
                }
                if let Some((i, subst)) = queue.get(cursors[q]) {
                    cursors[q] += 1;
                    advanced = true;
                    let mut key: Vec<(Symbol, ClassId)> =
                        subst.iter().map(|(&v, &c)| (v, egraph.find(c))).collect();
                    key.sort();
                    if applied.insert((*i, key)) {
                        instances.push((*i, subst.clone()));
                        budget -= 1;
                    }
                }
            }
            if !advanced {
                break;
            }
        }

        // Apply the batch.
        for (i, subst) in instances {
            let axiom = &axioms[i];
            match &axiom.body {
                AxiomBody::Equal(lhs, rhs) => {
                    let l = egraph.add_instantiation(lhs, &subst)?;
                    let r = egraph.add_instantiation(rhs, &subst)?;
                    egraph.union(l, r).map_err(|e| {
                        EGraphError::from_message(format!("axiom {}: {e}", axiom.name))
                    })?;
                }
                AxiomBody::Distinct(lhs, rhs) => {
                    let l = egraph.add_instantiation(lhs, &subst)?;
                    let r = egraph.add_instantiation(rhs, &subst)?;
                    egraph.assert_distinct(l, r).map_err(|e| {
                        EGraphError::from_message(format!("axiom {}: {e}", axiom.name))
                    })?;
                }
                AxiomBody::Clause(lits) => {
                    let mut literals = Vec::with_capacity(lits.len());
                    for (is_eq, lhs, rhs) in lits {
                        let l = egraph.add_instantiation(lhs, &subst)?;
                        let r = egraph.add_instantiation(rhs, &subst)?;
                        literals.push(if *is_eq {
                            EqLiteral::Eq(l, r)
                        } else {
                            EqLiteral::Ne(l, r)
                        });
                    }
                    egraph.add_clause(literals);
                }
            }
            report.instances += 1;
            any_change = true;
        }
        egraph.rebuild()?;
        if trace {
            eprintln!(
                "[saturate] round {}: {:?}, nodes={}, classes={}, instances={}",
                report.iterations,
                round_start.elapsed(),
                egraph.num_nodes(),
                egraph.num_classes(),
                report.instances
            );
        }

        if !any_change {
            report.saturated = true;
            break;
        }
        if egraph.num_nodes() >= limits.max_nodes {
            break;
        }
    }

    report.nodes = egraph.num_nodes();
    report.classes = egraph.num_classes();
    Ok(report)
}

/// Helper used by the Figure 2 walkthrough in tests and examples: the
/// operator symbols appearing in a class.
pub fn class_ops(egraph: &EGraph, class: ClassId) -> Vec<String> {
    egraph
        .nodes(class)
        .iter()
        .filter_map(|n| match n.op {
            Op::Sym(s) => Some(s.to_string()),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axiom::Axiom;

    fn pat(s: &str, vars: &[&str]) -> Term {
        let vars: Vec<Symbol> = vars.iter().map(|v| Symbol::intern(v)).collect();
        Term::from_sexpr(&denali_term::sexpr::parse_one(s).unwrap(), &vars).unwrap()
    }

    #[test]
    fn commutativity_doubles_the_class() {
        let mut eg = EGraph::new();
        let sum = eg.add_term(&pat("(add64 x y)", &[])).unwrap();
        let comm = Axiom::equality(
            "add64-comm",
            &["a", "b"],
            pat("(add64 a b)", &["a", "b"]),
            pat("(add64 b a)", &["a", "b"]),
        );
        let report = saturate(&mut eg, &[comm], &SaturationLimits::default()).unwrap();
        assert!(report.saturated);
        assert!(report.instances >= 1);
        assert_eq!(eg.nodes(sum).len(), 2);
    }

    #[test]
    fn side_conditions_gate_instantiation() {
        // f(x, c) = x only when c is the constant zero.
        let mut eg = EGraph::new();
        let keep = eg.add_term(&pat("(f x 1)", &[])).unwrap();
        let fold = eg.add_term(&pat("(f x 0)", &[])).unwrap();
        let x = eg.add_term(&pat("x", &[])).unwrap();
        let ax = Axiom::equality(
            "f-zero",
            &["a", "c"],
            pat("(f a c)", &["a", "c"]),
            pat("a", &["a"]),
        )
        .with_condition(&["c"], "c == 0", |vs| vs[0] == 0);
        saturate(&mut eg, &[ax], &SaturationLimits::default()).unwrap();
        assert_eq!(eg.find(fold), eg.find(x));
        assert_ne!(eg.find(keep), eg.find(x));
    }

    #[test]
    fn pow2_facts_enable_shift_discovery() {
        let mut eg = EGraph::new();
        let mul = eg.add_term(&pat("(mul64 reg6 4)", &[])).unwrap();
        let shift_ax = Axiom::equality(
            "mul64-pow2",
            &["k", "n"],
            pat("(mul64 k (pow 2 n))", &["k", "n"]),
            pat("(shl64 k n)", &["k", "n"]),
        )
        .with_condition(&["n"], "n < 64", |vs| vs[0] < 64);
        saturate(&mut eg, &[shift_ax], &SaturationLimits::default()).unwrap();
        let ops = class_ops(&eg, mul);
        assert!(ops.contains(&"shl64".to_owned()), "ops: {ops:?}");
    }

    #[test]
    fn quiescence_is_reached_and_reported() {
        let mut eg = EGraph::new();
        eg.add_term(&pat("(add64 a (add64 b c))", &[])).unwrap();
        let axioms = crate::builtin::math_axioms();
        let report = saturate(&mut eg, &axioms, &SaturationLimits::default()).unwrap();
        assert!(report.saturated, "report: {report:?}");
    }

    #[test]
    fn node_budget_stops_runaway_saturation() {
        // Associativity+commutativity over an 8-term sum explodes; a tiny
        // node budget must stop it without error.
        let mut eg = EGraph::new();
        let mut term = pat("a0", &[]);
        for i in 1..8 {
            term = Term::call("add64", vec![term, Term::leaf(format!("a{i}"))]);
        }
        eg.add_term(&term).unwrap();
        let limits = SaturationLimits {
            max_nodes: 200,
            ..SaturationLimits::default()
        };
        let report = saturate(&mut eg, &crate::builtin::math_axioms(), &limits).unwrap();
        assert!(!report.saturated);
    }

    #[test]
    fn clause_axiom_reaches_unit_assertion() {
        // select(store(M, p, x), p+8): the select-store axiom's clause
        // must fire and equate with select(M, p+8).
        let mut eg = EGraph::new();
        let loaded = eg
            .add_term(&pat("(select (store M p x) (add64 p 8))", &[]))
            .unwrap();
        let direct = eg.add_term(&pat("(select M (add64 p 8))", &[])).unwrap();
        assert_ne!(eg.find(loaded), eg.find(direct));
        saturate(
            &mut eg,
            &crate::builtin::math_axioms(),
            &SaturationLimits::default(),
        )
        .unwrap();
        assert_eq!(eg.find(loaded), eg.find(direct));
    }
}
