//! The matching phase: saturate an e-graph with axiom instances.
//!
//! "The matcher repeatedly transforms the E-graph by instantiating a
//! relevant axiom and asserting the instance in the E-graph. This is
//! repeated until a quiescent state is reached in which the E-graph
//! records all relevant instances of axioms." (§5)
//!
//! # Delta-driven rounds
//!
//! A naive saturation loop re-matches every axiom against the *entire*
//! e-graph each round, recomputing all of the previous rounds' matches
//! only to throw them away against the `applied` dedup set. This module
//! instead drives rounds off the e-graph's change journal
//! ([`EGraph::take_delta`]): the first round scans everything, and each
//! later round restricts the top-level candidate scan to the *dirty
//! cone* — the classes touched since the previous scan, plus every
//! ancestor within the deepest pattern's depth ([`EGraph::dirty_cone`]).
//! A new match must have its root in that cone (matching below the root
//! still searches full equivalence classes), so the applied instance
//! sequence — and therefore the final e-graph, byte for byte — is
//! identical to full re-matching. Two situations fall back to a full
//! scan: a round that truncated work against a budget (the discarded
//! matches' roots may lie outside the next cone), and the final
//! *verification pass* — when a delta round comes back idle, the round
//! re-matches everything before declaring quiescence, so the paper's
//! "quiescent state" guarantee never rests on the cone computation.
//! `DENALI_DELTA_MATCH=0` (or [`SaturationLimits::delta_match`]) forces
//! full re-matching every round.

use std::collections::{HashMap, HashSet};

use denali_egraph::{
    candidates, ematch_classes, pattern_depth, ClassId, Delta, EGraph, EGraphError, EqLiteral,
    Subst,
};
use denali_term::{Op, Symbol, Term};
use denali_trace::{field, Tracer};

use crate::axiom::{Axiom, AxiomBody, AxiomPriority};

/// Candidate classes handed to one parallel work item. Chunks split
/// *between* classes, so per-class dedup and result order are unaffected;
/// the number only balances uneven per-class match costs across threads.
const MATCH_CHUNK: usize = 64;

/// Budgets that keep the matcher from running forever (the paper's
/// caveat: heuristics may stop it before true quiescence, which is one
/// reason Denali's output is "near-optimal" rather than "optimal").
#[derive(Clone, Copy, Debug)]
pub struct SaturationLimits {
    /// Maximum number of match-apply rounds.
    pub max_iterations: usize,
    /// Stop once the e-graph holds this many e-nodes.
    pub max_nodes: usize,
    /// Maximum axiom instances applied per round.
    pub max_instances_per_round: usize,
    /// Maximum *structural* (commutativity/associativity) instances
    /// applied per round; these regroup terms without adding meaning and
    /// are the main driver of saturation divergence.
    pub max_structural_per_round: usize,
    /// Introduce `pow(2, k)` nodes into power-of-two constant classes
    /// (the paper's `4 = 2**2` step in Figure 2).
    pub pow2_facts: bool,
    /// Node-growth allowance for the structural (AC-closure) phase,
    /// beyond the size the semantic phase reached. The AC closure of a
    /// mixed-decomposition e-graph is astronomically large; this is the
    /// principal "stop the matcher" heuristic and the main reason output
    /// is "near-optimal" rather than "optimal".
    pub max_structural_growth: usize,
    /// Threads for the read-only e-matching pass of every round (`0`
    /// means one per available CPU). The e-graph is frozen while axioms
    /// are matched, so candidate chunks can match concurrently; instances
    /// are then applied serially in axiom order, making the result
    /// byte-identical to the serial path at any thread count.
    pub threads: usize,
    /// Restrict each round's top-level candidate scan to the classes
    /// changed since the previous round (plus a final full verification
    /// pass at quiescence). On by default; `DENALI_DELTA_MATCH=0`
    /// disables it, forcing a full re-match every round. Either setting
    /// produces byte-identical results — this knob only exists for
    /// differential testing and benchmarking.
    pub delta_match: bool,
    /// Hard ceiling on the number of e-classes the e-graph may allocate
    /// (see [`denali_egraph::EGraph::set_class_capacity`]). Unlike
    /// `max_nodes` — a soft budget checked between rounds — this is
    /// enforced on every allocation and turns exhaustion into a clean
    /// `TooManyClasses` error instead of aborting the process. The
    /// default is the e-graph's structural ceiling (`u32::MAX` class
    /// ids), i.e. effectively unlimited.
    pub max_classes: usize,
}

impl Default for SaturationLimits {
    fn default() -> SaturationLimits {
        SaturationLimits {
            max_iterations: 16,
            max_nodes: 20_000,
            max_instances_per_round: 10_000,
            max_structural_per_round: 1500,
            pow2_facts: true,
            max_structural_growth: 4000,
            threads: 1,
            delta_match: env_delta_match(),
            max_classes: u32::MAX as usize,
        }
    }
}

/// `DENALI_DELTA_MATCH` (`0`/`false`/`off` disable), defaulting to on.
fn env_delta_match() -> bool {
    match std::env::var("DENALI_DELTA_MATCH") {
        Ok(v) => !matches!(v.trim(), "0" | "false" | "off"),
        Err(_) => true,
    }
}

/// Telemetry for one match-apply round.
#[derive(Clone, Copy, Default, Debug)]
pub struct RoundStats {
    /// Top-level candidate classes actually e-matched (summed over
    /// every axiom pattern).
    pub scanned: usize,
    /// Candidate classes the delta filter excluded from the top-level
    /// scan. `scanned + skipped` is what a full pass would have matched.
    pub skipped: usize,
    /// Axiom instances applied this round.
    pub instances: usize,
    /// True for rounds that scanned every candidate: the first round of
    /// a phase, rounds after a budget truncation, every round with
    /// [`SaturationLimits::delta_match`] off, and verification passes.
    pub full: bool,
    /// True for the full-fidelity re-match that runs when a delta round
    /// reports quiescence (recorded as an extra entry in the same
    /// iteration).
    pub verification: bool,
    /// Wall-clock time for the round, in milliseconds.
    pub ms: f64,
}

/// What the saturation run did.
#[derive(Clone, Default, Debug)]
pub struct SaturationReport {
    /// Rounds executed.
    pub iterations: usize,
    /// Axiom instances asserted.
    pub instances: usize,
    /// True if a quiescent state was reached within the budgets.
    pub saturated: bool,
    /// Final e-node count.
    pub nodes: usize,
    /// Final class count.
    pub classes: usize,
    /// Total top-level candidate classes e-matched across all rounds.
    pub scanned_candidates: usize,
    /// Total top-level candidates the delta filter skipped.
    pub skipped_candidates: usize,
    /// Per-round telemetry, in execution order (verification passes
    /// appear as their own entries, so this can be longer than
    /// `iterations`).
    pub rounds: Vec<RoundStats>,
}

impl SaturationReport {
    fn absorb(&mut self, other: SaturationReport) {
        self.iterations += other.iterations;
        self.instances += other.instances;
        self.saturated &= other.saturated;
        self.nodes = other.nodes;
        self.classes = other.classes;
        self.scanned_candidates += other.scanned_candidates;
        self.skipped_candidates += other.skipped_candidates;
        self.rounds.extend(other.rounds);
    }
}

/// True if the axiom's equality right-hand side introduces at most one
/// new node (an operator applied directly to bound variables and
/// constants). Such axioms cannot cascade: applying them to a class adds
/// a bounded number of nodes.
fn simple_rhs(axiom: &Axiom) -> bool {
    match &axiom.body {
        AxiomBody::Equal(_, rhs) => rhs.args().iter().all(|a| a.args().is_empty()),
        _ => false,
    }
}

/// Saturates `egraph` with instances of `axioms` until quiescence or
/// until a budget in `limits` is exhausted.
///
/// Saturation runs in two phases, which is how this reproduction
/// realizes the paper's "heuristics that are designed to keep the
/// matcher from running forever":
///
/// 1. **Semantic phase** — every non-structural axiom (definitions,
///    expansions, simplifications) runs to quiescence on the original
///    term structure.
/// 2. **Structural phase** — commutativity/associativity instances plus
///    the *simple* defining axioms (those whose right-hand side is a
///    single operator over bound variables, e.g. the `or64 → bis`
///    bridges) compute the AC closure. Excluding the expansion axioms
///    here prevents the cascade where every new regrouping re-triggers
///    mask/shift expansions of its subterms.
///
/// # Errors
///
/// Propagates contradictions from the e-graph (which indicate an unsound
/// axiom set).
pub fn saturate(
    egraph: &mut EGraph,
    axioms: &[Axiom],
    limits: &SaturationLimits,
) -> Result<SaturationReport, EGraphError> {
    saturate_traced(egraph, axioms, limits, &Tracer::disabled())
}

/// [`saturate`] with structured tracing: per-phase and per-round spans,
/// `delta.cone` / `egraph.stats` / `ematch.axiom` / `ematch.chunk`
/// events. With a disabled tracer this *is* [`saturate`] — the applied
/// instance sequence is identical either way (tracing only observes).
///
/// # Errors
///
/// As [`saturate`].
pub fn saturate_traced(
    egraph: &mut EGraph,
    axioms: &[Axiom],
    limits: &SaturationLimits,
    tracer: &Tracer,
) -> Result<SaturationReport, EGraphError> {
    let phase1: Vec<Axiom> = axioms
        .iter()
        .filter(|a| a.priority != AxiomPriority::Structural)
        .cloned()
        .collect();
    let phase2: Vec<Axiom> = axioms
        .iter()
        .filter(|a| a.priority == AxiomPriority::Structural || simple_rhs(a))
        .cloned()
        .collect();
    let mut report = saturate_phase(egraph, &phase1, limits, tracer, 1)?;
    let phase2_limits = SaturationLimits {
        max_iterations: limits.max_iterations.min(8),
        max_nodes: limits
            .max_nodes
            .min(egraph.num_nodes() + limits.max_structural_growth),
        ..*limits
    };
    let r2 = saturate_phase(egraph, &phase2, &phase2_limits, tracer, 2)?;
    report.absorb(r2);
    Ok(report)
}

/// Canonicalized dedup key for one axiom instance: the substitution with
/// every class representative resolved, in sorted variable order (which
/// is the order [`Subst::iter`] already yields).
type Key = Vec<(Symbol, ClassId)>;

fn saturate_phase(
    egraph: &mut EGraph,
    axioms: &[Axiom],
    limits: &SaturationLimits,
    tracer: &Tracer,
    phase: u64,
) -> Result<SaturationReport, EGraphError> {
    let phase_span = tracer.span_fields(
        "saturate.phase",
        vec![field("phase", phase), field("axioms", axioms.len())],
    );
    let mut report = SaturationReport::default();
    let mut applied: HashMap<usize, HashSet<Key>> = HashMap::new();
    let mut pow2_done: HashSet<u64> = HashSet::new();

    // Flattened (axiom index, pattern) work list; fixed for the phase.
    let patterns: Vec<(usize, &Term)> = axioms
        .iter()
        .enumerate()
        .flat_map(|(i, axiom)| axiom.patterns.iter().map(move |p| (i, p)))
        .collect();
    let body_vars: Vec<Vec<Symbol>> = axioms.iter().map(|a| a.body_vars()).collect();
    // A match for the deepest pattern only reaches classes within this
    // many child edges of its root, so this bounds how far dirtiness
    // must propagate up the parent index.
    let cone_depth = patterns
        .iter()
        .map(|&(_, p)| pattern_depth(p))
        .max()
        .unwrap_or(0);
    let threads = denali_par::resolve_threads(limits.threads);

    egraph.rebuild()?;

    // Journal entries not yet consumed by a scan: `constants` feed the
    // next round's pow2 step, `classes` seed the next cone.
    let mut pending = Delta::default();
    let mut full_next = true;
    for _ in 0..limits.max_iterations {
        report.iterations += 1;
        let round_start = std::time::Instant::now();
        let mut stats = RoundStats {
            full: full_next || !limits.delta_match,
            ..RoundStats::default()
        };
        let full_round = stats.full;
        let round_span = tracer.span_fields(
            "saturate.round",
            vec![
                field("round", report.iterations),
                field("phase", phase),
                field("full", full_round),
            ],
        );
        let ops_before = egraph.op_counts();
        let mut any_change = false;

        if full_round {
            // A full scan supersedes everything journaled so far.
            egraph.take_delta();
            pending = Delta::default();
        } else {
            // Changes from the previous round's apply + rebuild.
            pending.absorb(egraph.take_delta());
        }

        // Dynamic constant facts: for every constant class holding a
        // power of two, record c = pow(2, log2 c) so patterns like
        // k * 2**n can match literal constants; for byte-shift amounts
        // (multiples of 8 below 64) record c = 8 * (c/8) so the
        // byte-instruction definitions (insbl = selectb << 8*i) can
        // match literal shift counts. A full round walks every class;
        // a delta round only visits the journal's newly registered
        // constants, ordered by canonical class id — the order the full
        // walk would visit them in.
        if limits.pow2_facts {
            let constants: Vec<u64> = if full_round {
                egraph
                    .classes()
                    .iter()
                    .filter_map(|&c| egraph.constant(c))
                    .collect()
            } else {
                let mut pend = std::mem::take(&mut pending.constants);
                pend.sort_by_key(|&v| egraph.constant_class(v));
                pend.dedup();
                pend
            };
            for c in constants {
                if !pow2_done.insert(c) {
                    continue;
                }
                if c.is_power_of_two() && c >= 2 {
                    let k = c.trailing_zeros() as u64;
                    let pow = Term::call("pow", vec![Term::constant(2), Term::constant(k)]);
                    // Adding the term folds it into c's class eagerly.
                    egraph.add_term(&pow).expect("ground term");
                    any_change = true;
                }
                if c % 8 == 0 && c < 64 {
                    let shift = Term::call("mul64", vec![Term::constant(8), Term::constant(c / 8)]);
                    egraph.add_term(&shift).expect("ground term");
                    any_change = true;
                }
            }
            egraph.rebuild()?;
        }

        // Changes made by the pow2 step itself. In a full round only the
        // new constants matter (the full match below covers every class
        // anyway); in a delta round the touched classes join this
        // round's cone, exactly as the pow2 additions precede matching
        // in a full round.
        let pow2_delta = egraph.take_delta();
        let cone: Option<HashSet<ClassId>> = if full_round {
            pending.constants.extend(pow2_delta.constants);
            None
        } else {
            pending.absorb(pow2_delta);
            let seeds = std::mem::take(&mut pending.classes);
            let cone = egraph.dirty_cone(&seeds, cone_depth);
            tracer.event("delta.cone", || {
                vec![
                    field("seeds", seeds.len()),
                    field("cone", cone.len()),
                    field("depth", cone_depth),
                ]
            });
            Some(cone)
        };

        let (mut instances, truncated) = match_and_replay(
            egraph,
            axioms,
            &patterns,
            &body_vars,
            cone.as_ref(),
            limits,
            threads,
            &mut applied,
            &mut stats,
            tracer,
        );
        stats.instances = instances.len();
        apply_instances(egraph, axioms, std::mem::take(&mut instances), &mut report)?;
        if stats.instances > 0 {
            any_change = true;
        }
        egraph.rebuild()?;

        report.scanned_candidates += stats.scanned;
        report.skipped_candidates += stats.skipped;
        stats.ms = round_start.elapsed().as_secs_f64() * 1e3;
        report.rounds.push(stats);
        emit_egraph_stats(egraph, ops_before, tracer);
        round_span.finish_fields(vec![
            field("scanned", stats.scanned),
            field("skipped", stats.skipped),
            field("instances", stats.instances),
            field("truncated", truncated),
        ]);

        // A truncated round may have discarded matches whose roots lie
        // outside the next cone; rescan everything to pick them up.
        full_next = truncated;

        if !any_change {
            if limits.delta_match && !full_round {
                // Full-fidelity verification: an idle delta round only
                // counts as quiescence if a complete re-match (same
                // round) agrees. If the cone ever missed something this
                // applies it and keeps going instead of stopping early.
                let verify_start = std::time::Instant::now();
                let mut vstats = RoundStats {
                    full: true,
                    verification: true,
                    ..RoundStats::default()
                };
                let verify_span = tracer.span_fields(
                    "saturate.round",
                    vec![
                        field("round", report.iterations),
                        field("phase", phase),
                        field("full", true),
                        field("verification", true),
                    ],
                );
                let vops_before = egraph.op_counts();
                egraph.take_delta();
                pending = Delta::default();
                let (mut vinstances, vtruncated) = match_and_replay(
                    egraph,
                    axioms,
                    &patterns,
                    &body_vars,
                    None,
                    limits,
                    threads,
                    &mut applied,
                    &mut vstats,
                    tracer,
                );
                vstats.instances = vinstances.len();
                apply_instances(egraph, axioms, std::mem::take(&mut vinstances), &mut report)?;
                egraph.rebuild()?;
                report.scanned_candidates += vstats.scanned;
                report.skipped_candidates += vstats.skipped;
                vstats.ms = verify_start.elapsed().as_secs_f64() * 1e3;
                let idle = vstats.instances == 0;
                report.rounds.push(vstats);
                emit_egraph_stats(egraph, vops_before, tracer);
                verify_span.finish_fields(vec![
                    field("scanned", vstats.scanned),
                    field("skipped", vstats.skipped),
                    field("instances", vstats.instances),
                    field("truncated", vtruncated),
                ]);
                full_next = vtruncated;
                if idle {
                    report.saturated = true;
                    break;
                }
            } else {
                report.saturated = true;
                break;
            }
        }
        if egraph.num_nodes() >= limits.max_nodes {
            break;
        }
    }

    report.nodes = egraph.num_nodes();
    report.classes = egraph.num_classes();
    phase_span.finish_fields(vec![
        field("iterations", report.iterations),
        field("instances", report.instances),
        field("saturated", report.saturated),
        field("nodes", report.nodes),
        field("classes", report.classes),
    ]);
    Ok(report)
}

/// Emits the per-round `egraph.stats` event: what the e-graph did since
/// `before` (deltas) plus its current size (gauges).
fn emit_egraph_stats(egraph: &EGraph, before: denali_egraph::OpCounts, tracer: &Tracer) {
    tracer.event("egraph.stats", || {
        let d = egraph.op_counts().since(before);
        let mem = egraph.memory_stats();
        vec![
            field("adds", d.adds),
            field("hits", d.hits),
            field("new_nodes", d.new_nodes),
            field("unions", d.unions),
            field("congruence_unions", d.congruence_unions),
            field("folds", d.folds),
            field("rebuilds", d.rebuilds),
            field("nodes", egraph.num_nodes()),
            field("classes", egraph.num_classes()),
            // Memory gauges for the arena/SoA storage: payload bytes,
            // so the values are deterministic for a given graph shape.
            field("arena_bytes", mem.arena_bytes),
            field("slice_bytes", mem.slice_bytes),
            field("slice_entries", mem.slice_entries),
            field("mem_bytes", mem.total_bytes),
            field("bytes_per_node", mem.bytes_per_node().round() as u64),
        ]
    });
}

/// One match pass plus the serial replay: e-matches every pattern
/// (restricted to `cone` roots when given), then deduplicates and
/// budgets the matches in axiom order. Returns the instances to apply
/// and whether any budget truncated work (in which case discarded
/// matches must be re-found by a full scan next round).
#[allow(clippy::too_many_arguments)]
fn match_and_replay(
    egraph: &EGraph,
    axioms: &[Axiom],
    patterns: &[(usize, &Term)],
    body_vars: &[Vec<Symbol>],
    cone: Option<&HashSet<ClassId>>,
    limits: &SaturationLimits,
    threads: usize,
    applied: &mut HashMap<usize, HashSet<Key>>,
    stats: &mut RoundStats,
    tracer: &Tracer,
) -> (Vec<(usize, Subst)>, bool) {
    // Per-axiom trace counters, accumulated alongside the round stats
    // and emitted as `ematch.axiom` events after the serial replay.
    let mut axiom_scanned = vec![0u64; axioms.len()];
    let mut axiom_matches = vec![0u64; axioms.len()];
    let mut axiom_applied = vec![0u64; axioms.len()];

    // Top-level candidates per pattern, delta-filtered. Filtering a
    // sorted candidate list keeps relative order, so the match stream is
    // a subsequence of the full pass's stream.
    let mut cand_lists: Vec<Vec<ClassId>> = Vec::with_capacity(patterns.len());
    for &(axiom_idx, pattern) in patterns {
        let all = candidates(egraph, pattern);
        match cone {
            None => {
                stats.scanned += all.len();
                axiom_scanned[axiom_idx] += all.len() as u64;
                cand_lists.push(all);
            }
            Some(cone) => {
                let kept: Vec<ClassId> = all.iter().copied().filter(|c| cone.contains(c)).collect();
                stats.scanned += kept.len();
                stats.skipped += all.len() - kept.len();
                axiom_scanned[axiom_idx] += kept.len() as u64;
                cand_lists.push(kept);
            }
        }
    }

    // Collect matches for this round. The e-graph is frozen here, so the
    // e-matching pass is a pure read-only fan-out: each candidate chunk
    // of each (axiom, pattern) pair is matched concurrently (including
    // body-variable/side-condition filtering and canonical-key
    // computation, which only read the e-graph), and the results come
    // back in work order — chunks never split a class, so concatenating
    // them per pattern reproduces the unchunked stream. The stateful
    // parts — the cross-round `applied` dedup, the per-round instance
    // budget, and the structural queues — are then replayed serially in
    // exactly the order the serial implementation uses, so the applied
    // instance set is byte-identical at any thread count.
    let work: Vec<(usize, std::ops::Range<usize>)> = cand_lists
        .iter()
        .enumerate()
        .flat_map(|(pi, list)| {
            denali_par::chunk_ranges(list.len(), MATCH_CHUNK)
                .into_iter()
                .map(move |r| (pi, r))
        })
        .collect();
    let frozen: &EGraph = egraph;
    let chunk_results: Vec<(Vec<(Subst, Key)>, denali_trace::LocalBuffer)> =
        denali_par::map_indexed(threads, &work, |_, (pi, range)| {
            let mut buffer = tracer.local();
            let chunk_start = std::time::Instant::now();
            let (axiom_idx, pattern) = patterns[*pi];
            let axiom = &axioms[axiom_idx];
            let body_vars = &body_vars[axiom_idx];
            let mut out = Vec::new();
            for (_, subst) in ematch_classes(frozen, pattern, &cand_lists[*pi][range.clone()]) {
                if !body_vars.iter().all(|&v| subst.contains(v)) {
                    continue; // pattern does not bind every body variable
                }
                if let Some(cond) = &axiom.condition {
                    let values: Option<Vec<u64>> = cond
                        .vars
                        .iter()
                        .map(|&v| subst.get(v).and_then(|c| frozen.constant(c)))
                        .collect();
                    match values {
                        Some(vs) if (cond.pred)(&vs) => {}
                        _ => continue,
                    }
                }
                // Bindings iterate in sorted variable order, so the key
                // needs no sort.
                let key: Key = subst.iter().map(|(v, c)| (v, frozen.find(c))).collect();
                out.push((subst, key));
            }
            buffer.event("ematch.chunk", || {
                vec![
                    field("axiom", axioms[axiom_idx].name.clone()),
                    field("pattern", *pi),
                    field("candidates", range.len()),
                    field("matches", out.len()),
                    field("match_us", chunk_start.elapsed().as_micros() as u64),
                ]
            });
            (out, buffer)
        });
    // Buffers splice in work order — the order chunks were *created*,
    // not the order threads finished them — so the event stream is
    // identical at every thread count.
    let mut per_pattern: Vec<Vec<(Subst, Key)>> = vec![Vec::new(); patterns.len()];
    let mut buffers = Vec::with_capacity(chunk_results.len());
    for ((pi, _), (result, buffer)) in work.into_iter().zip(chunk_results) {
        axiom_matches[patterns[pi].0] += result.len() as u64;
        per_pattern[pi].extend(result);
        buffers.push(buffer);
    }
    tracer.splice(buffers);

    // Serial replay: budget accounting and deduplication in axiom
    // order. Structural (associativity-style) instances are budgeted
    // and shared fairly across axioms so they cannot starve each
    // other or blow the e-graph up.
    let mut truncated = false;
    let mut instances: Vec<(usize, Subst)> = Vec::new();
    let mut structural_queues: Vec<Vec<(usize, Subst)>> = Vec::new();
    let mut results = per_pattern.into_iter();
    'axioms: for (i, axiom) in axioms.iter().enumerate() {
        let is_structural = axiom.priority == AxiomPriority::Structural;
        let mut queue = Vec::new();
        for _ in &axiom.patterns {
            let pattern_matches = results.next().expect("one result per pattern");
            if instances.len() >= limits.max_instances_per_round {
                truncated = true;
                break 'axioms;
            }
            for (subst, key) in pattern_matches {
                if applied.get(&i).is_some_and(|keys| keys.contains(&key)) {
                    continue;
                }
                if is_structural {
                    queue.push((i, subst));
                    // Deduplication happens when the instance is
                    // actually taken from the queue below.
                    continue;
                }
                applied.entry(i).or_default().insert(key);
                axiom_applied[i] += 1;
                instances.push((i, subst));
                if instances.len() >= limits.max_instances_per_round {
                    break;
                }
            }
        }
        if !queue.is_empty() {
            structural_queues.push(queue);
        }
    }
    // Round-robin the structural budget across axioms.
    let mut budget = limits.max_structural_per_round;
    let mut cursors = vec![0usize; structural_queues.len()];
    while budget > 0 {
        let mut advanced = false;
        for (q, queue) in structural_queues.iter().enumerate() {
            if budget == 0 {
                break;
            }
            if let Some((i, subst)) = queue.get(cursors[q]) {
                cursors[q] += 1;
                advanced = true;
                let key: Key = subst.iter().map(|(v, c)| (v, egraph.find(c))).collect();
                if applied.entry(*i).or_default().insert(key) {
                    axiom_applied[*i] += 1;
                    instances.push((*i, subst.clone()));
                    budget -= 1;
                }
            }
        }
        if !advanced {
            break;
        }
    }
    if cursors
        .iter()
        .zip(&structural_queues)
        .any(|(&c, q)| c < q.len())
    {
        truncated = true;
    }
    // Per-axiom round summary, in axiom order (quiet axioms omitted).
    for (i, axiom) in axioms.iter().enumerate() {
        if axiom_scanned[i] == 0 && axiom_matches[i] == 0 && axiom_applied[i] == 0 {
            continue;
        }
        tracer.event("ematch.axiom", || {
            vec![
                field("axiom", axiom.name.clone()),
                field("scanned", axiom_scanned[i]),
                field("matches", axiom_matches[i]),
                field("applied", axiom_applied[i]),
            ]
        });
    }
    (instances, truncated)
}

/// Asserts a batch of axiom instances into the e-graph.
fn apply_instances(
    egraph: &mut EGraph,
    axioms: &[Axiom],
    instances: Vec<(usize, Subst)>,
    report: &mut SaturationReport,
) -> Result<(), EGraphError> {
    for (i, subst) in instances {
        let axiom = &axioms[i];
        match &axiom.body {
            AxiomBody::Equal(lhs, rhs) => {
                let l = egraph.add_instantiation(lhs, &subst)?;
                let r = egraph.add_instantiation(rhs, &subst)?;
                egraph
                    .union(l, r)
                    .map_err(|e| EGraphError::from_message(format!("axiom {}: {e}", axiom.name)))?;
            }
            AxiomBody::Distinct(lhs, rhs) => {
                let l = egraph.add_instantiation(lhs, &subst)?;
                let r = egraph.add_instantiation(rhs, &subst)?;
                egraph
                    .assert_distinct(l, r)
                    .map_err(|e| EGraphError::from_message(format!("axiom {}: {e}", axiom.name)))?;
            }
            AxiomBody::Clause(lits) => {
                let mut literals = Vec::with_capacity(lits.len());
                for (is_eq, lhs, rhs) in lits {
                    let l = egraph.add_instantiation(lhs, &subst)?;
                    let r = egraph.add_instantiation(rhs, &subst)?;
                    literals.push(if *is_eq {
                        EqLiteral::Eq(l, r)
                    } else {
                        EqLiteral::Ne(l, r)
                    });
                }
                egraph.add_clause(literals);
            }
        }
        report.instances += 1;
    }
    Ok(())
}

/// Helper used by the Figure 2 walkthrough in tests and examples: the
/// operator symbols appearing in a class.
pub fn class_ops(egraph: &EGraph, class: ClassId) -> Vec<String> {
    egraph
        .class_node_ids(class)
        .iter()
        .filter_map(|&nid| match egraph.node_op(nid) {
            Op::Sym(s) => Some(s.to_string()),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axiom::Axiom;

    fn pat(s: &str, vars: &[&str]) -> Term {
        let vars: Vec<Symbol> = vars.iter().map(|v| Symbol::intern(v)).collect();
        Term::from_sexpr(&denali_term::sexpr::parse_one(s).unwrap(), &vars).unwrap()
    }

    fn limits(delta: bool) -> SaturationLimits {
        SaturationLimits {
            delta_match: delta,
            ..SaturationLimits::default()
        }
    }

    #[test]
    fn commutativity_doubles_the_class() {
        for delta in [false, true] {
            let mut eg = EGraph::new();
            let sum = eg.add_term(&pat("(add64 x y)", &[])).unwrap();
            let comm = Axiom::equality(
                "add64-comm",
                &["a", "b"],
                pat("(add64 a b)", &["a", "b"]),
                pat("(add64 b a)", &["a", "b"]),
            );
            let report = saturate(&mut eg, &[comm], &limits(delta)).unwrap();
            assert!(report.saturated);
            assert!(report.instances >= 1);
            assert_eq!(eg.nodes(sum).len(), 2, "delta={delta}");
        }
    }

    #[test]
    fn side_conditions_gate_instantiation() {
        // f(x, c) = x only when c is the constant zero.
        for delta in [false, true] {
            let mut eg = EGraph::new();
            let keep = eg.add_term(&pat("(f x 1)", &[])).unwrap();
            let fold = eg.add_term(&pat("(f x 0)", &[])).unwrap();
            let x = eg.add_term(&pat("x", &[])).unwrap();
            let ax = Axiom::equality(
                "f-zero",
                &["a", "c"],
                pat("(f a c)", &["a", "c"]),
                pat("a", &["a"]),
            )
            .with_condition(&["c"], "c == 0", |vs| vs[0] == 0);
            saturate(&mut eg, &[ax], &limits(delta)).unwrap();
            assert_eq!(eg.find(fold), eg.find(x));
            assert_ne!(eg.find(keep), eg.find(x));
        }
    }

    #[test]
    fn pow2_facts_enable_shift_discovery() {
        for delta in [false, true] {
            let mut eg = EGraph::new();
            let mul = eg.add_term(&pat("(mul64 reg6 4)", &[])).unwrap();
            let shift_ax = Axiom::equality(
                "mul64-pow2",
                &["k", "n"],
                pat("(mul64 k (pow 2 n))", &["k", "n"]),
                pat("(shl64 k n)", &["k", "n"]),
            )
            .with_condition(&["n"], "n < 64", |vs| vs[0] < 64);
            saturate(&mut eg, &[shift_ax], &limits(delta)).unwrap();
            let ops = class_ops(&eg, mul);
            assert!(ops.contains(&"shl64".to_owned()), "ops: {ops:?}");
        }
    }

    #[test]
    fn quiescence_is_reached_and_reported() {
        let mut eg = EGraph::new();
        eg.add_term(&pat("(add64 a (add64 b c))", &[])).unwrap();
        let axioms = crate::builtin::math_axioms();
        let report = saturate(&mut eg, &axioms, &SaturationLimits::default()).unwrap();
        assert!(report.saturated, "report: {report:?}");
    }

    #[test]
    fn node_budget_stops_runaway_saturation() {
        // Associativity+commutativity over an 8-term sum explodes; a tiny
        // node budget must stop it without error.
        let mut eg = EGraph::new();
        let mut term = pat("a0", &[]);
        for i in 1..8 {
            term = Term::call("add64", vec![term, Term::leaf(format!("a{i}"))]);
        }
        eg.add_term(&term).unwrap();
        let limits = SaturationLimits {
            max_nodes: 200,
            ..SaturationLimits::default()
        };
        let report = saturate(&mut eg, &crate::builtin::math_axioms(), &limits).unwrap();
        assert!(!report.saturated);
    }

    #[test]
    fn clause_axiom_reaches_unit_assertion() {
        // select(store(M, p, x), p+8): the select-store axiom's clause
        // must fire and equate with select(M, p+8).
        for delta in [false, true] {
            let mut eg = EGraph::new();
            let loaded = eg
                .add_term(&pat("(select (store M p x) (add64 p 8))", &[]))
                .unwrap();
            let direct = eg.add_term(&pat("(select M (add64 p 8))", &[])).unwrap();
            assert_ne!(eg.find(loaded), eg.find(direct));
            saturate(&mut eg, &crate::builtin::math_axioms(), &limits(delta)).unwrap();
            assert_eq!(eg.find(loaded), eg.find(direct));
        }
    }

    #[test]
    fn delta_rounds_skip_quiescent_candidates() {
        // After the first full scan, every later non-verification round
        // must restrict its top-level scan (skipped > 0 once the graph
        // has quiescent regions), while the sum scanned+skipped per
        // round accounts for every candidate a full pass would touch.
        let mut eg = EGraph::new();
        eg.add_term(&pat("(mul64 (add64 a (add64 b c)) 4)", &[]))
            .unwrap();
        let report = saturate(&mut eg, &crate::builtin::math_axioms(), &limits(true)).unwrap();
        assert!(report.saturated);
        assert!(report.rounds.len() >= 3, "rounds: {:?}", report.rounds);
        assert!(report.rounds[0].full && report.rounds[0].skipped == 0);
        let delta_rounds: Vec<&RoundStats> = report.rounds.iter().filter(|r| !r.full).collect();
        assert!(!delta_rounds.is_empty());
        // Early rounds may legitimately dirty the whole (small) graph;
        // what matters is that quiescent regions eventually drop out of
        // the scan.
        assert!(
            delta_rounds.iter().any(|r| r.skipped > 0),
            "delta rounds must skip quiescent candidates: {:?}",
            report.rounds
        );
        // The run ends with a verification pass that found nothing.
        let last = report.rounds.last().unwrap();
        assert!(last.verification && last.instances == 0);
        assert!(report.skipped_candidates > 0);
    }

    #[test]
    fn delta_and_full_agree_on_reports() {
        // Beyond e-graph equality (covered by the differential test),
        // the *reports* must agree on everything except scan telemetry.
        let build = |delta: bool| {
            let mut eg = EGraph::new();
            eg.add_term(&pat("(add64 (mul64 reg6 4) (add64 b c))", &[]))
                .unwrap();
            let report = saturate(&mut eg, &crate::builtin::math_axioms(), &limits(delta)).unwrap();
            (report, eg.num_nodes(), eg.num_classes())
        };
        let (full, fnodes, fclasses) = build(false);
        let (delta, dnodes, dclasses) = build(true);
        assert_eq!((fnodes, fclasses), (dnodes, dclasses));
        assert_eq!(full.iterations, delta.iterations);
        assert_eq!(full.instances, delta.instances);
        assert_eq!(full.saturated, delta.saturated);
        assert!(delta.scanned_candidates < full.scanned_candidates);
    }
}
