#![warn(missing_docs)]

//! Axioms and the matching (saturation) engine.
//!
//! The paper (§4) distinguishes *mathematical axioms* ("facts about
//! functions and relations that would be useful in describing many
//! different target architectures") from *architectural axioms* ("define
//! or describe operations relevant to a particular target architecture"),
//! plus *program-specific axioms* embedded in Denali source programs.
//!
//! This crate provides:
//!
//! * [`Axiom`] — quantified equalities, distinctions, and clauses with
//!   explicit trigger patterns (the paper's `pats`) and optional side
//!   conditions over matched constants,
//! * parsing of the paper's LISP-like axiom syntax
//!   ([`Axiom::parse_sexpr`]),
//! * the built-in axiom sets: [`math_axioms`] and [`alpha_axioms`],
//! * [`saturate`] — the matching phase of Figure 1: repeatedly
//!   instantiate relevant axioms in the e-graph until quiescence (or a
//!   budget is exhausted; the paper's "heuristics that are designed to
//!   keep the matcher from running forever").
//!
//! # Example
//!
//! ```
//! use denali_axioms::{alpha_axioms, math_axioms, saturate, SaturationLimits};
//! use denali_egraph::EGraph;
//! use denali_term::Term;
//!
//! // Figure 2: saturate reg6*4 + 1 and find the s4addq way.
//! let mut eg = EGraph::new();
//! let goal = eg.add_term(&Term::call("add64", vec![
//!     Term::call("mul64", vec![Term::leaf("reg6"), Term::constant(4)]),
//!     Term::constant(1),
//! ])).unwrap();
//! let mut axioms = math_axioms();
//! axioms.extend(alpha_axioms());
//! saturate(&mut eg, &axioms, &SaturationLimits::default()).unwrap();
//! let ops: Vec<_> = eg.nodes(goal).iter().filter_map(|n| n.sym()).collect();
//! assert!(ops.iter().any(|s| s.as_str() == "s4addq"));
//! ```

mod axiom;
mod builtin;
mod saturate;

pub use axiom::AxiomPriority;
pub use axiom::{Axiom, AxiomBody, ParseAxiomError, SideCondition};
pub use builtin::{alpha_axioms, axioms_for, ia64_axioms, math_axioms, standard_axioms};
pub use saturate::{
    class_ops, saturate, saturate_traced, RoundStats, SaturationLimits, SaturationReport,
};
