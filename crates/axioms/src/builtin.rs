//! The built-in axiom files: mathematical and Alpha-EV6 architectural
//! axioms.
//!
//! These play the role of the paper's `mathematical axioms` (44 axioms /
//! 127 lines) and `Alpha axioms` (275 axioms / 637 lines). Our sets are
//! smaller but cover everything the reproduced experiments exercise; each
//! axiom is verified against the operation semantics by the soundness
//! property tests in `tests/prop_soundness.rs`.

use denali_term::{Symbol, Term};

use crate::axiom::{Axiom, AxiomBody};

fn pat(s: &str, vars: &[&str]) -> Term {
    let vars: Vec<Symbol> = vars.iter().map(|v| Symbol::intern(v)).collect();
    Term::from_sexpr(
        &denali_term::sexpr::parse_one(s).expect("valid built-in pattern"),
        &vars,
    )
    .expect("valid built-in pattern")
}

fn eq(name: &str, vars: &[&str], lhs: &str, rhs: &str) -> Axiom {
    Axiom::equality(name, vars, pat(lhs, vars), pat(rhs, vars))
}

/// Like [`eq`] but triggered by *either* side (useful when both forms
/// should be discoverable from the other).
fn eq2(name: &str, vars: &[&str], lhs: &str, rhs: &str) -> Axiom {
    let rhs_pat = pat(rhs, vars);
    eq(name, vars, lhs, rhs).with_pattern(rhs_pat)
}

fn byte_ne(vs: &[u64]) -> bool {
    (vs[0] & 7) != (vs[1] & 7)
}

fn byte_eq(vs: &[u64]) -> bool {
    (vs[0] & 7) == (vs[1] & 7)
}

fn byte_nonzero(vs: &[u64]) -> bool {
    (vs[0] & 7) != 0
}

fn shift_in_range(vs: &[u64]) -> bool {
    vs[0] < 64
}

/// `count` is a legal shladd shift count (IA-64 allows 1..=4).
fn shladd_count(vs: &[u64]) -> bool {
    (1..=4).contains(&vs[0])
}

/// `m` is a low-bits mask `2^k - 1` with `k ≥ 1`, and the position is a
/// legal shift.
fn low_mask_and_pos(vs: &[u64]) -> bool {
    vs[0] < 64 && vs[1] >= 1 && vs[1].wrapping_add(1).is_power_of_two()
}

/// `m` is a low-bits mask `2^k - 1` with `k ≥ 1`.
fn low_mask(vs: &[u64]) -> bool {
    vs[0] >= 1 && vs[0].wrapping_add(1).is_power_of_two()
}

/// Both byte indices address whole 16-bit fields that do not overlap
/// (and do not hang off the top of the word).
fn words_disjoint(vs: &[u64]) -> bool {
    let i = vs[0] & 7;
    let j = vs[1] & 7;
    i <= 6 && j <= 6 && (i + 1 < j || j + 1 < i)
}

/// The mathematical axioms: facts about the arithmetic, bitwise, byte,
/// and array operations that hold on any target (paper §4).
pub fn math_axioms() -> Vec<Axiom> {
    let mut axioms = vec![
        // ---- 64-bit modular arithmetic ----
        eq("add64-comm", &["a", "b"], "(add64 a b)", "(add64 b a)"),
        eq2(
            "add64-assoc",
            &["a", "b", "c"],
            "(add64 a (add64 b c))",
            "(add64 (add64 a b) c)",
        )
        .structural(),
        eq("add64-id", &["a"], "(add64 a 0)", "a"),
        eq("add64-self", &["a"], "(add64 a a)", "(mul64 a 2)"),
        eq("sub64-id", &["a"], "(sub64 a 0)", "a"),
        eq("sub64-self", &["a"], "(sub64 a a)", "0"),
        eq("mul64-comm", &["a", "b"], "(mul64 a b)", "(mul64 b a)"),
        eq2(
            "mul64-assoc",
            &["a", "b", "c"],
            "(mul64 a (mul64 b c))",
            "(mul64 (mul64 a b) c)",
        )
        .structural(),
        eq("mul64-id", &["a"], "(mul64 a 1)", "a"),
        eq("mul64-zero", &["a"], "(mul64 a 0)", "0"),
        eq2(
            "mul64-pow2",
            &["k", "n"],
            "(mul64 k (pow 2 n))",
            "(shl64 k n)",
        )
        .with_condition(&["n"], "n < 64", shift_in_range),
        eq("pow-one", &["a"], "(pow a 1)", "a"),
        eq("pow-zero", &["a"], "(pow a 0)", "1"),
        // ---- bitwise algebra ----
        eq("and64-comm", &["a", "b"], "(and64 a b)", "(and64 b a)"),
        eq2(
            "and64-assoc",
            &["a", "b", "c"],
            "(and64 a (and64 b c))",
            "(and64 (and64 a b) c)",
        )
        .structural(),
        eq("and64-zero", &["a"], "(and64 a 0)", "0"),
        eq("and64-ones", &["a"], "(and64 a 0xffffffffffffffff)", "a"),
        eq("and64-self", &["a"], "(and64 a a)", "a"),
        eq("or64-comm", &["a", "b"], "(or64 a b)", "(or64 b a)"),
        eq2(
            "or64-assoc",
            &["a", "b", "c"],
            "(or64 a (or64 b c))",
            "(or64 (or64 a b) c)",
        )
        .structural(),
        eq("or64-id", &["a"], "(or64 a 0)", "a"),
        eq("or64-self", &["a"], "(or64 a a)", "a"),
        eq("xor64-comm", &["a", "b"], "(xor64 a b)", "(xor64 b a)"),
        eq("xor64-id", &["a"], "(xor64 a 0)", "a"),
        eq("xor64-self", &["a"], "(xor64 a a)", "0"),
        eq("not64-invol", &["a"], "(not64 (not64 a))", "a"),
        eq("shl64-zero", &["a"], "(shl64 a 0)", "a"),
        eq("shr64-zero", &["a"], "(shr64 a 0)", "a"),
        // ---- byte algebra (selectb / storeb) ----
        eq2(
            "selectb-shift",
            &["w", "i"],
            "(selectb w i)",
            "(and64 (shr64 w (mul64 8 i)) 255)",
        ),
        eq(
            "selectb-idem",
            &["w", "j"],
            "(selectb (selectb w j) 0)",
            "(selectb w j)",
        ),
        eq(
            "storeb-shift",
            &["w", "i", "x"],
            "(storeb w i x)",
            "(or64 (and64 w (not64 (shl64 255 (mul64 8 i)))) (shl64 (and64 x 255) (mul64 8 i)))",
        ),
        eq("castshort-def", &["a"], "(castshort a)", "(and64 a 65535)"),
        // ---- arrays (select / store) ----
        eq(
            "select-store-same",
            &["a", "i", "x"],
            "(select (store a i x) i)",
            "x",
        ),
    ];
    // The select-store clause: i = j  ∨  select(store(a,i,x), j) = select(a, j).
    axioms.push(Axiom {
        name: "select-store-other".to_owned(),
        vars: ["a", "i", "j", "x"]
            .iter()
            .map(|v| Symbol::intern(v))
            .collect(),
        patterns: vec![pat("(select (store a i x) j)", &["a", "i", "j", "x"])],
        body: AxiomBody::Clause(vec![
            (true, pat("i", &["i"]), pat("j", &["j"])),
            (
                true,
                pat("(select (store a i x) j)", &["a", "i", "j", "x"]),
                pat("(select a j)", &["a", "j"]),
            ),
        ]),
        condition: None,
        priority: crate::axiom::AxiomPriority::Defining,
    });
    axioms
}

/// The architectural axioms for our Alpha-EV6-like target: definitions of
/// machine operations in terms of the mathematical functions (paper §4:
/// "we usually use the same name for an instruction and for the function
/// that it computes").
pub fn alpha_axioms() -> Vec<Axiom> {
    vec![
        // ---- arithmetic bridges ----
        eq("addq-def", &["a", "b"], "(add64 a b)", "(addq a b)"),
        eq("subq-def", &["a", "b"], "(sub64 a b)", "(subq a b)"),
        eq("mulq-def", &["a", "b"], "(mul64 a b)", "(mulq a b)"),
        // ---- scaled add/subtract (the s4addl of Figure 2, in its
        // 64-bit form) ----
        eq(
            "s4addq-def",
            &["k", "n"],
            "(add64 (mul64 k 4) n)",
            "(s4addq k n)",
        ),
        eq(
            "s8addq-def",
            &["k", "n"],
            "(add64 (mul64 k 8) n)",
            "(s8addq k n)",
        ),
        eq(
            "s4subq-def",
            &["k", "n"],
            "(sub64 (mul64 k 4) n)",
            "(s4subq k n)",
        ),
        eq(
            "s8subq-def",
            &["k", "n"],
            "(sub64 (mul64 k 8) n)",
            "(s8subq k n)",
        ),
        // ---- bitwise bridges ----
        eq("and-def", &["a", "b"], "(and64 a b)", "(and a b)"),
        eq("bis-def", &["a", "b"], "(or64 a b)", "(bis a b)"),
        eq("xor-def", &["a", "b"], "(xor64 a b)", "(xor a b)"),
        eq("not-ornot", &["a"], "(not64 a)", "(ornot 0 a)"),
        eq("bic-def", &["a", "b"], "(and64 a (not64 b))", "(bic a b)"),
        eq(
            "ornot-def",
            &["a", "b"],
            "(or64 a (not64 b))",
            "(ornot a b)",
        ),
        eq("eqv-def", &["a", "b"], "(not64 (xor64 a b))", "(eqv a b)"),
        eq("sll-def", &["a", "b"], "(shl64 a b)", "(sll a b)"),
        eq("srl-def", &["a", "b"], "(shr64 a b)", "(srl a b)"),
        eq("sra-def", &["a", "b"], "(sar64 a b)", "(sra a b)"),
        // bis identities (machine-level, so byte-op chains simplify
        // without a round-trip through or64)
        eq("bis-id-r", &["a"], "(bis a 0)", "a"),
        eq("bis-id-l", &["a"], "(bis 0 a)", "a"),
        // ---- byte-manipulation instructions (paper §4's examples) ----
        // extbl(w, i) = selectb(w, i)
        eq2("extbl-def", &["w", "i"], "(selectb w i)", "(extbl w i)"),
        // insbl(w, i) = selectb(w, 0) << 8*i
        eq2(
            "insbl-def",
            &["w", "i"],
            "(insbl w i)",
            "(shl64 (selectb w 0) (mul64 8 i))",
        ),
        // insbl only reads the low byte of its operand.
        eq(
            "insbl-low-byte",
            &["w", "i"],
            "(insbl (selectb w 0) i)",
            "(insbl w i)",
        ),
        // mskbl(w, i) = storeb(w, i, 0); operationally a mask.
        eq2(
            "mskbl-def",
            &["w", "i"],
            "(mskbl w i)",
            "(and64 w (not64 (shl64 255 (mul64 8 i))))",
        ),
        eq("mskbl-storeb", &["w", "i"], "(storeb w i 0)", "(mskbl w i)"),
        // The decomposition that drives byte-swap code generation:
        // storeb(w,i,x) = bis(mskbl(w,i), insbl(x,i)).
        eq(
            "storeb-decompose",
            &["w", "i", "x"],
            "(storeb w i x)",
            "(bis (mskbl w i) (insbl x i))",
        ),
        // mskbl distributes over bis.
        eq(
            "mskbl-bis",
            &["u", "v", "i"],
            "(mskbl (bis u v) i)",
            "(bis (mskbl u i) (mskbl v i))",
        ),
        // Masking a byte an insert/extract did not populate is a no-op.
        eq(
            "mskbl-insbl-other",
            &["x", "j", "i"],
            "(mskbl (insbl x j) i)",
            "(insbl x j)",
        )
        .with_condition(&["i", "j"], "byte(i) != byte(j)", byte_ne),
        eq(
            "mskbl-insbl-same",
            &["x", "j", "i"],
            "(mskbl (insbl x j) i)",
            "0",
        )
        .with_condition(&["i", "j"], "byte(i) == byte(j)", byte_eq),
        eq(
            "mskbl-extbl",
            &["w", "j", "i"],
            "(mskbl (extbl w j) i)",
            "(extbl w j)",
        )
        .with_condition(&["i"], "byte(i) != 0", byte_nonzero),
        // 16-bit extract: extwl(w, i) = (w >> 8i) & 0xffff.
        eq2(
            "extwl-def",
            &["w", "i"],
            "(extwl w i)",
            "(and64 (shr64 w (mul64 8 i)) 65535)",
        ),
        // ---- 16-bit field algebra (selectw/storew are word-indexed;
        // the machine instructions are byte-indexed, hence the 2i) ----
        eq(
            "selectw-extwl",
            &["w", "i"],
            "(selectw w i)",
            "(extwl w (mul64 2 i))",
        ),
        eq(
            "storew-decompose",
            &["w", "i", "x"],
            "(storew w i x)",
            "(bis (mskwl w (mul64 2 i)) (inswl x (mul64 2 i)))",
        ),
        eq(
            "mskwl-bis",
            &["u", "v", "i"],
            "(mskwl (bis u v) i)",
            "(bis (mskwl u i) (mskwl v i))",
        ),
        eq(
            "mskwl-inswl-other",
            &["x", "j", "i"],
            "(mskwl (inswl x j) i)",
            "(inswl x j)",
        )
        .with_condition(&["i", "j"], "16-bit fields disjoint", words_disjoint),
        eq(
            "mskwl-extwl",
            &["w", "j", "i"],
            "(mskwl (extwl w j) i)",
            "(extwl w j)",
        )
        .with_condition(&["i"], "byte(i) != 0 and != 1", |vs| {
            (vs[0] & 7) > 1 && (vs[0] & 7) <= 6
        }),
        // inswl reads only the low 16 bits of its operand.
        eq(
            "inswl-low-word",
            &["x", "i"],
            "(inswl (castshort x) i)",
            "(inswl x i)",
        ),
        // Inserting at byte 0 is just the low-16-bit truncation.
        eq("inswl-zero", &["x"], "(inswl x 0)", "(castshort x)"),
        // extwl's result already fits 16 bits.
        eq(
            "castshort-extwl",
            &["w", "j"],
            "(castshort (extwl w j))",
            "(extwl w j)",
        ),
        // ---- zapnot / mask idioms ----
        eq("zapnot-byte", &["a"], "(and64 a 255)", "(zapnot a 1)"),
        eq("zapnot-word", &["a"], "(and64 a 65535)", "(zapnot a 3)"),
        eq(
            "zapnot-long",
            &["a"],
            "(and64 a 4294967295)",
            "(zapnot a 15)",
        ),
        eq("extbl-low", &["a"], "(and64 a 255)", "(extbl a 0)"),
        eq("extwl-low", &["a"], "(and64 a 65535)", "(extwl a 0)"),
        // ---- conditional move (if-then-else) ----
        eq(
            "cmovne-def",
            &["c", "a", "b"],
            "(ite c a b)",
            "(cmovne c a b)",
        ),
        eq(
            "cmoveq-def",
            &["c", "a", "b"],
            "(ite c a b)",
            "(cmoveq c b a)",
        ),
        // ---- sign extension ----
        eq("sextb-def", &["a"], "(sar64 (shl64 a 56) 56)", "(sextb a)"),
        eq("sextw-def", &["a"], "(sar64 (shl64 a 48) 48)", "(sextw a)"),
        // ---- 32-bit arithmetic ----
        eq(
            "addl-def",
            &["a", "b"],
            "(castint (add64 a b))",
            "(addl a b)",
        ),
        eq(
            "subl-def",
            &["a", "b"],
            "(castint (sub64 a b))",
            "(subl a b)",
        ),
        // ---- memory bridges ----
        eq("ldq-def", &["m", "p"], "(select m p)", "(ldq m p)"),
        eq("stq-def", &["m", "p", "x"], "(store m p x)", "(stq m p x)"),
    ]
}

/// The architectural axioms for the Itanium-flavored target (the
/// paper's in-progress port: "the changes will mostly be to the
/// axioms"). IA-64 has no byte-manipulation unit; its idioms are
/// shift-and-add (`shladd`), bit-field extract (`extr_u`), and deposit
/// (`dep_z`). The `log2` helper in the right-hand sides constant-folds
/// at instantiation time, turning matched masks into field widths.
pub fn ia64_axioms() -> Vec<Axiom> {
    vec![
        // ---- shared arithmetic/bitwise bridges ----
        eq("addq-def", &["a", "b"], "(add64 a b)", "(addq a b)"),
        eq("subq-def", &["a", "b"], "(sub64 a b)", "(subq a b)"),
        eq("mulq-def", &["a", "b"], "(mul64 a b)", "(mulq a b)"),
        eq("and-def", &["a", "b"], "(and64 a b)", "(and a b)"),
        eq("bis-def", &["a", "b"], "(or64 a b)", "(bis a b)"),
        eq("xor-def", &["a", "b"], "(xor64 a b)", "(xor a b)"),
        eq("not-ornot", &["a"], "(not64 a)", "(ornot 0 a)"),
        eq(
            "andcm-def",
            &["a", "b"],
            "(and64 a (not64 b))",
            "(andcm a b)",
        ),
        eq(
            "ornot-def",
            &["a", "b"],
            "(or64 a (not64 b))",
            "(ornot a b)",
        ),
        eq("sll-def", &["a", "b"], "(shl64 a b)", "(sll a b)"),
        eq("srl-def", &["a", "b"], "(shr64 a b)", "(srl a b)"),
        eq("sra-def", &["a", "b"], "(sar64 a b)", "(sra a b)"),
        eq("bis-id-r", &["a"], "(bis a 0)", "a"),
        eq("bis-id-l", &["a"], "(bis 0 a)", "a"),
        // ---- shift-and-add (subsumes the Alpha's s4addq/s8addq) ----
        eq(
            "shladd-def",
            &["a", "c", "b"],
            "(add64 (shl64 a c) b)",
            "(shladd a c b)",
        )
        .with_condition(&["c"], "1 <= c <= 4", shladd_count),
        // ---- bit-field extract: (w >> p) & (2^k - 1) ----
        eq(
            "extr-def",
            &["w", "p", "m"],
            "(and64 (shr64 w p) m)",
            "(extr_u w p (log2 (add64 m 1)))",
        )
        .with_condition(&["p", "m"], "p < 64, m = 2^k-1", low_mask_and_pos),
        // Extract at position 0 is a plain mask.
        eq(
            "extr-zero-def",
            &["w", "m"],
            "(and64 w m)",
            "(extr_u w 0 (log2 (add64 m 1)))",
        )
        .with_condition(&["m"], "m = 2^k-1", low_mask),
        // ---- bit-field deposit: (x & (2^k - 1)) << p ----
        eq(
            "dep-def",
            &["x", "p", "m"],
            "(shl64 (and64 x m) p)",
            "(dep_z x p (log2 (add64 m 1)))",
        )
        .with_condition(&["p", "m"], "p < 64, m = 2^k-1", low_mask_and_pos),
        // selectb/storeb reach machine form through the shift/mask math
        // axioms plus extr/dep; give selectb a direct route as well.
        eq(
            "selectb-extr",
            &["w", "i"],
            "(selectb w i)",
            "(extr_u w (mul64 8 i) 8)",
        ),
        // ---- conditional move and sign extension (same as Alpha) ----
        eq(
            "cmovne-def",
            &["c", "a", "b"],
            "(ite c a b)",
            "(cmovne c a b)",
        ),
        eq(
            "cmoveq-def",
            &["c", "a", "b"],
            "(ite c a b)",
            "(cmoveq c b a)",
        ),
        eq("sextb-def", &["a"], "(sar64 (shl64 a 56) 56)", "(sextb a)"),
        eq("sextw-def", &["a"], "(sar64 (shl64 a 48) 48)", "(sextw a)"),
        // ---- memory bridges ----
        eq("ldq-def", &["m", "p"], "(select m p)", "(ldq m p)"),
        eq("stq-def", &["m", "p", "x"], "(store m p x)", "(stq m p x)"),
    ]
}

/// The axiom set for a machine, selected by [`denali name`]:
/// `ia64like` gets the Itanium set, everything else the Alpha set —
/// always on top of the mathematical axioms.
pub fn axioms_for(machine_name: &str) -> Vec<Axiom> {
    let mut axioms = math_axioms();
    if machine_name.starts_with("ia64") {
        axioms.extend(ia64_axioms());
    } else {
        axioms.extend(alpha_axioms());
    }
    axioms
}

/// The default (Alpha EV6) axiom set: mathematical plus architectural.
pub fn standard_axioms() -> Vec<Axiom> {
    let mut axioms = math_axioms();
    axioms.extend(alpha_axioms());
    axioms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::saturate::{saturate, SaturationLimits};
    use denali_egraph::EGraph;

    fn all_axioms() -> Vec<Axiom> {
        let mut a = math_axioms();
        a.extend(alpha_axioms());
        a
    }

    #[test]
    fn axiom_names_are_unique() {
        let axioms = all_axioms();
        for (i, a) in axioms.iter().enumerate() {
            for b in &axioms[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
    }

    #[test]
    fn patterns_bind_all_body_variables() {
        for axiom in all_axioms() {
            for v in axiom.body_vars() {
                assert!(
                    axiom.patterns.iter().any(|p| p.vars().contains(&v)),
                    "axiom {} has unbindable variable ?{v}",
                    axiom.name
                );
            }
        }
    }

    #[test]
    fn figure2_reaches_s4addq() {
        // The paper's Figure 2 walkthrough: reg6*4 + 1 must end up with
        // mul+add, shift+add, and s4addq ways.
        let mut eg = EGraph::new();
        let goal = eg.add_term(&pat("(add64 (mul64 reg6 4) 1)", &[])).unwrap();
        let mul = eg.lookup_term(&pat("(mul64 reg6 4)", &[])).unwrap();
        saturate(&mut eg, &all_axioms(), &SaturationLimits::default()).unwrap();
        let goal_ops = crate::saturate::class_ops(&eg, goal);
        assert!(goal_ops.contains(&"s4addq".to_owned()), "{goal_ops:?}");
        assert!(goal_ops.contains(&"addq".to_owned()), "{goal_ops:?}");
        let mul_ops = crate::saturate::class_ops(&eg, mul);
        assert!(mul_ops.contains(&"sll".to_owned()), "{mul_ops:?}");
        assert!(mul_ops.contains(&"mulq".to_owned()), "{mul_ops:?}");
    }

    #[test]
    fn five_term_sum_has_over_a_hundred_ways() {
        // §5: "more than a hundred different ways of computing
        // a + b + c + d + e".
        let mut eg = EGraph::new();
        let sum = eg
            .add_term(&pat("(add64 a (add64 b (add64 c (add64 d e))))", &[]))
            .unwrap();
        saturate(
            &mut eg,
            &math_axioms(),
            &SaturationLimits {
                max_iterations: 24,
                max_nodes: 200_000,
                ..SaturationLimits::default()
            },
        )
        .unwrap();
        let ways = eg.count_ways(sum, 8);
        assert!(ways > 100, "only {ways} ways");
    }

    #[test]
    fn storeb_chain_discovers_insbl_extbl_bis() {
        // One byte store: storeb(0, 3, selectb(a, 0)) must become a
        // single insbl(a, 3).
        let mut eg = EGraph::new();
        let goal = eg
            .add_term(&pat("(storeb 0 3 (selectb a 0))", &[]))
            .unwrap();
        saturate(&mut eg, &all_axioms(), &SaturationLimits::default()).unwrap();
        let ops = crate::saturate::class_ops(&eg, goal);
        assert!(ops.contains(&"insbl".to_owned()), "{ops:?}");
        // And that insbl applies directly to `a`.
        let direct = eg.lookup_term(&pat("(insbl a 3)", &[])).unwrap();
        assert_eq!(eg.find(direct), eg.find(goal));
    }

    #[test]
    fn two_byte_store_chain_reduces() {
        // storeb(storeb(0, 0, selectb(a, 3)), 1, selectb(a, 2)):
        // the byteswap4 inner structure; must contain a bis of an extbl
        // and an insbl-of-extbl.
        let mut eg = EGraph::new();
        let goal = eg
            .add_term(&pat(
                "(storeb (storeb 0 0 (selectb a 3)) 1 (selectb a 2))",
                &[],
            ))
            .unwrap();
        saturate(&mut eg, &all_axioms(), &SaturationLimits::default()).unwrap();
        let ops = crate::saturate::class_ops(&eg, goal);
        assert!(ops.contains(&"bis".to_owned()), "{ops:?}");
        let extbl3 = eg.lookup_term(&pat("(extbl a 3)", &[])).unwrap();
        let inner = eg
            .lookup_term(&pat("(storeb 0 0 (selectb a 3))", &[]))
            .unwrap();
        assert_eq!(eg.find(inner), eg.find(extbl3), "inner store is one extbl");
    }
}
