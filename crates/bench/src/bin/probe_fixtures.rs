//! Quick driver: run every fixture through the pipeline and print
//! cycles/instructions (used while developing the harness).
use denali_bench::{compile_checked, default_denali, programs};
use std::collections::HashMap;
use std::time::Instant;

fn main() {
    let denali = default_denali();
    let memory: HashMap<u64, u64> = (0..16u64).map(|i| (64 + 8 * i, 0x1111 * (i + 1))).collect();
    type Fixture = (&'static str, &'static str, Vec<(&'static str, u64)>);
    let fixtures: Vec<Fixture> = vec![
        ("figure2", programs::FIGURE2, vec![("reg6", 10)]),
        ("byteswap4", programs::BYTESWAP4, vec![("a", 0x11223344)]),
        ("byteswap5", programs::BYTESWAP5, vec![("a", 0x1122334455)]),
        ("lcp2", programs::LCP2, vec![("a", 48), ("b", 80)]),
        (
            "rowop",
            programs::ROWOP,
            vec![("p", 64), ("q", 128), ("r", 1024), ("c", 3)],
        ),
        (
            "checksum_serial",
            programs::CHECKSUM_SERIAL,
            vec![("ptr", 64), ("ptrend", 128)],
        ),
        (
            "checksum",
            programs::CHECKSUM,
            vec![("ptr", 64), ("ptrend", 128)],
        ),
    ];
    for (name, src, inputs) in fixtures {
        let t = Instant::now();
        let result = compile_checked(&denali, src, &inputs, &memory);
        let main = result.main();
        println!(
            "{name:16} -> {} cycles, {:2} instrs, {} GMAs, {:?} total (match {:.0} ms, SAT {:.0} ms)",
            main.cycles,
            main.program.len(),
            result.gmas.len(),
            t.elapsed(),
            main.match_ms,
            main.solver_ms(),
        );
    }
}
