//! E2m: memory footprint of the e-graph's arena/SoA storage.
//!
//! Compiles the largest GMA fixtures and records, per fixture, the
//! saturated e-graph's payload bytes per node under the arena layout
//! versus the modeled pre-arena layout (owned `ENode` clones in class
//! node lists, parent entries, and memo keys — measured from the same
//! graph shape), plus the matching-phase wall time. The binary asserts
//! the headline invariant itself (arena ≥ 2× smaller per node on every
//! fixture) and writes `BENCH_egraph.json` for CI to validate and
//! upload; `report e2m` prints the same numbers as a table.

use std::time::Instant;

use denali_axioms::{math_axioms, saturate, SaturationLimits};
use denali_bench::{default_denali, programs};
use denali_egraph::{EGraph, MemoryStats};
use denali_term::{sexpr, Term};

struct Config {
    out: String,
}

fn parse_args() -> Config {
    let mut config = Config {
        out: "BENCH_egraph.json".to_owned(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => config.out = args.next().expect("--out needs a path"),
            other => panic!("unknown argument: {other} (supported: --out <path>)"),
        }
    }
    config
}

struct Leg {
    name: &'static str,
    mem: MemoryStats,
    wall_ms: f64,
}

/// Compile a fixture and aggregate the saturated e-graph stats over
/// its GMAs (multi-GMA fixtures like checksum sum their graphs).
fn compile_leg(name: &'static str, source: &str) -> Leg {
    let denali = default_denali();
    let result = denali.compile_source(source).expect("fixture compiles");
    let mut mem = MemoryStats::default();
    let mut wall_ms = 0.0;
    for gma in &result.gmas {
        let m = gma.egraph_memory;
        mem.nodes += m.nodes;
        mem.classes += m.classes;
        mem.arena_bytes += m.arena_bytes;
        mem.slice_bytes += m.slice_bytes;
        mem.slice_entries += m.slice_entries;
        mem.slice_refs += m.slice_refs;
        mem.shared_child_bytes += m.shared_child_bytes;
        mem.class_bytes += m.class_bytes;
        mem.memo_bytes += m.memo_bytes;
        mem.total_bytes += m.total_bytes;
        mem.legacy_bytes += m.legacy_bytes;
        mem.reclaimed_bytes += m.reclaimed_bytes;
        wall_ms += gma.match_ms;
    }
    Leg { name, mem, wall_ms }
}

/// The e2 saturation workhorse (a+b+c+d+e under the math axioms),
/// measured directly at the e-graph level: the wall time here is
/// comparable to `report e2s` and pins "saturation no slower".
fn chain_leg() -> Leg {
    let term = Term::from_sexpr(
        &sexpr::parse_one("(add64 a (add64 b (add64 c (add64 d e))))").unwrap(),
        &[],
    )
    .unwrap();
    let limits = SaturationLimits {
        max_iterations: 24,
        ..SaturationLimits::default()
    };
    let mut eg = EGraph::new();
    eg.add_term(&term).unwrap();
    let t = Instant::now();
    saturate(&mut eg, &math_axioms(), &limits).unwrap();
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    Leg {
        name: "e2_chain",
        mem: eg.memory_stats(),
        wall_ms,
    }
}

fn push_leg(json: &mut String, leg: &Leg) {
    let m = &leg.mem;
    json.push_str(&format!(
        concat!(
            "{{\"name\":\"{}\",\"nodes\":{},\"classes\":{},",
            "\"total_bytes\":{},\"legacy_bytes\":{},",
            "\"bytes_per_node\":{:.1},\"legacy_bytes_per_node\":{:.1},",
            "\"reduction\":{:.2},\"dedup_ratio\":{:.2},",
            "\"slice_entries\":{},\"slice_refs\":{},",
            "\"reclaimed_bytes\":{},\"wall_ms\":{:.3}}}"
        ),
        leg.name,
        m.nodes,
        m.classes,
        m.total_bytes,
        m.legacy_bytes,
        m.bytes_per_node(),
        m.legacy_bytes_per_node(),
        m.reduction(),
        m.dedup_ratio(),
        m.slice_entries,
        m.slice_refs,
        m.reclaimed_bytes,
        leg.wall_ms,
    ));
}

fn main() {
    let config = parse_args();
    let legs = vec![
        chain_leg(),
        compile_leg("figure2", programs::FIGURE2),
        compile_leg("byteswap4", programs::BYTESWAP4),
        compile_leg("byteswap5", programs::BYTESWAP5),
        compile_leg("checksum", programs::CHECKSUM),
    ];

    println!(
        "{:<10} {:>8} {:>8} {:>12} {:>14} {:>10} {:>8} {:>9}",
        "leg", "nodes", "classes", "bytes/node", "legacy b/node", "reduction", "dedup", "wall ms"
    );
    for leg in &legs {
        let m = &leg.mem;
        println!(
            "{:<10} {:>8} {:>8} {:>12.1} {:>14.1} {:>9.2}x {:>7.2}x {:>9.3}",
            leg.name,
            m.nodes,
            m.classes,
            m.bytes_per_node(),
            m.legacy_bytes_per_node(),
            m.reduction(),
            m.dedup_ratio(),
            leg.wall_ms,
        );
    }

    // Headline invariant: the arena layout is at least 2x smaller per
    // node than the pre-arena layout on every fixture.
    for leg in &legs {
        assert!(
            leg.mem.reduction() >= 2.0,
            "{}: bytes/node reduction {:.2}x < 2x",
            leg.name,
            leg.mem.reduction()
        );
    }

    let mut json = String::from("{\"schema\":\"denali-egraph-mem-v2\",\"legs\":[");
    for (i, leg) in legs.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        push_leg(&mut json, leg);
    }
    json.push_str("]}\n");
    std::fs::write(&config.out, &json).expect("write report");
    println!("wrote {}", config.out);
}
