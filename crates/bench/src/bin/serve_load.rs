//! Open-loop load benchmark for the compilation server.
//!
//! Replays a synthetic request schedule against an in-process server
//! over real TCP sockets — the same transport, pool, coalescer, and
//! cache a production `denali serve --tcp` runs. The schedule is
//! **open-loop**: request *i* is fired at `start + i/rate` regardless
//! of how many earlier requests have completed, so a slow server grows
//! a backlog instead of silently slowing the generator down (no
//! coordinated omission). Latency is measured from each request's
//! *scheduled* arrival, so schedule slip under load counts against the
//! server, not the generator.
//!
//! Three legs, each reported as a row in `BENCH_serve.json`:
//!
//! * **mixed** — a blend of unique programs (cold-cache compiles) and
//!   a small hot set (cache hits, plus single-flight coalescing when
//!   duplicates land while the leader is still compiling).
//! * **stampede** — K identical requests released by a barrier on K
//!   connections at once. The pipeline must execute exactly **once**;
//!   everything else must be answered by the coalescer or the cache.
//!   The binary exits nonzero if it does not.
//! * **deadline** — W concurrent `engine: auto` requests (one per
//!   worker, distinct heavy byteswap fixtures under the slow DPLL
//!   solver) whose deadlines expire mid-search. Every one must come
//!   back *harvested*: a verified stochastic program strictly cheaper
//!   than the baseline, not a degraded answer. The binary exits
//!   nonzero if any degrades.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p denali-bench --bin serve_load -- \
//!     [--requests N] [--rate R] [--stampede K] [--workers W] \
//!     [--queue Q] [--deadline-ms D] [--out BENCH_serve.json]
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use denali_axioms::SaturationLimits;
use denali_core::Options;
use denali_serve::{serve_listener, Server, ServerConfig};
use denali_trace::json::{self, Json};

struct Config {
    requests: usize,
    rate: f64,
    stampede: usize,
    workers: usize,
    queue: usize,
    deadline_ms: u64,
    out: String,
}

fn parse_args() -> Config {
    let mut config = Config {
        requests: 160,
        rate: 120.0,
        stampede: 64,
        workers: 2,
        queue: 64,
        deadline_ms: 4_000,
        out: "BENCH_serve.json".to_owned(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--requests" => config.requests = value().parse().expect("--requests"),
            "--rate" => config.rate = value().parse().expect("--rate"),
            "--stampede" => config.stampede = value().parse().expect("--stampede"),
            "--workers" => config.workers = value().parse().expect("--workers"),
            "--queue" => config.queue = value().parse().expect("--queue"),
            "--deadline-ms" => config.deadline_ms = value().parse().expect("--deadline-ms"),
            "--out" => config.out = value(),
            other => panic!("unknown flag {other}; see the module docs"),
        }
    }
    config
}

/// Small saturation budgets: per-request pipeline cost in the low
/// milliseconds, so the bench exercises *serving* dynamics (queueing,
/// coalescing, shedding) rather than raw search throughput.
fn fast_options() -> Options {
    Options {
        max_cycles: 8,
        saturation: SaturationLimits {
            max_iterations: 2,
            max_nodes: 400,
            max_instances_per_round: 100,
            max_structural_per_round: 20,
            max_structural_growth: 100,
            ..SaturationLimits::default()
        },
        ..Options::default()
    }
}

/// The i-th distinct program: same shape, different constant, so every
/// source is a distinct fingerprint with identical compile cost.
fn source(i: usize) -> String {
    format!(r"(\procdecl f{i} ((reg6 long)) long (:= (\res (+ (* reg6 4) {i}))))")
}

fn compile_line(id: &str, source: &str) -> String {
    let mut src = String::new();
    json::write_str(&mut src, source);
    format!(r#"{{"type":"compile","id":"{id}","source":{src}}}"#)
}

/// The i-th distinct heavy fixture for the deadline leg: a byteswap
/// whose proc name varies (distinct fingerprints, identical cost). The
/// e-graph here takes ~2 s to saturate and the DPLL cycle search runs
/// for minutes, while the stochastic prepass publishes a verified
/// 6-cycle candidate (baseline 7) within its first few hundred
/// proposals — the shape that makes deadline harvesting observable.
fn heavy_source(i: usize) -> String {
    format!(
        r"(\procdecl byteswap4_{i} ((a long)) long
  (\var (r long 0)
    (\semi
      (:= ((\selectb r 0) (\selectb a 3)))
      (:= ((\selectb r 1) (\selectb a 2)))
      (:= ((\selectb r 2) (\selectb a 1)))
      (:= ((\selectb r 3) (\selectb a 0)))
      (:= (\res r)))))"
    )
}

/// A compile line for the deadline leg: `engine: auto` under the slow
/// DPLL solver, with a deadline that expires mid-search.
fn deadline_line(id: &str, source: &str, deadline_ms: u64) -> String {
    let mut src = String::new();
    json::write_str(&mut src, source);
    format!(
        r#"{{"type":"compile","id":"{id}","source":{src},"deadline_ms":{deadline_ms},"options":{{"solver":"dpll","engine":"auto"}}}}"#
    )
}

/// One request over its own connection; returns the parsed response
/// body and the latency from `scheduled`.
fn exchange(addr: std::net::SocketAddr, line: &str, scheduled: Instant) -> (Json, Duration) {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    writer
        .write_all(format!("{line}\n").as_bytes())
        .expect("send request");
    let mut response = String::new();
    reader.read_line(&mut response).expect("read response");
    let latency = scheduled.elapsed();
    (
        json::parse(response.trim()).expect("response parses"),
        latency,
    )
}

fn round_trip(addr: std::net::SocketAddr, line: &str, scheduled: Instant) -> (String, Duration) {
    let (v, latency) = exchange(addr, line, scheduled);
    let status = match v.get("status").and_then(Json::as_str) {
        Some("ok") if v.get("degraded").and_then(Json::as_bool) == Some(true) => "degraded",
        Some(status) => status,
        None => "error",
    };
    (status.to_owned(), latency)
}

/// Counters that change across a leg, read from a `stats` request.
#[derive(Clone, Copy, Default)]
struct Counters {
    executions: u64,
    coalesced: u64,
    hits: u64,
    shed: u64,
    harvests: u64,
}

fn counters(server: &Server) -> Counters {
    let body = server
        .handle_line(r#"{"type":"stats","id":0}"#)
        .expect("stats response");
    let v = json::parse(&body).expect("stats parse");
    let at = |path: &[&str]| {
        let mut node = &v;
        for key in path {
            node = node.get(key).expect("stats field");
        }
        node.as_u64().expect("stats number")
    };
    Counters {
        executions: at(&["executions"]),
        coalesced: at(&["coalesce", "coalesced"]),
        hits: at(&["cache", "hits"]),
        shed: at(&["overload_rejections"]) + at(&["shutdown_rejections"]),
        harvests: at(&["stoke", "harvests"]),
    }
}

struct Leg {
    name: &'static str,
    requests: usize,
    ok: usize,
    degraded: usize,
    errors: usize,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    /// This leg's delta of the server's own `total`-stage histogram
    /// (admission to response) — the self-reported side of the
    /// cross-validation.
    server_p50_ms: f64,
    server_p95_ms: f64,
    server_p99_ms: f64,
    delta: Counters,
}

impl Leg {
    fn coalesce_ratio(&self) -> f64 {
        self.delta.coalesced as f64 / (self.requests as f64).max(1.0)
    }

    fn shed_rate(&self) -> f64 {
        self.delta.shed as f64 / (self.requests as f64).max(1.0)
    }
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[rank]
}

fn finish_leg(
    name: &'static str,
    outcomes: Vec<(String, Duration)>,
    before: Counters,
    after: Counters,
    histogram: &denali_metrics::HistogramSnapshot,
) -> Leg {
    let mut ms: Vec<f64> = outcomes
        .iter()
        .map(|(_, d)| d.as_secs_f64() * 1e3)
        .collect();
    ms.sort_by(f64::total_cmp);
    let count = |want: &str| outcomes.iter().filter(|(status, _)| status == want).count();
    Leg {
        name,
        requests: outcomes.len(),
        ok: count("ok"),
        degraded: count("degraded"),
        errors: count("error"),
        p50_ms: percentile(&ms, 0.50),
        p95_ms: percentile(&ms, 0.95),
        p99_ms: percentile(&ms, 0.99),
        server_p50_ms: histogram.quantile(0.50) as f64 / 1e3,
        server_p95_ms: histogram.quantile(0.95) as f64 / 1e3,
        server_p99_ms: histogram.quantile(0.99) as f64 / 1e3,
        delta: Counters {
            executions: after.executions - before.executions,
            coalesced: after.coalesced - before.coalesced,
            hits: after.hits - before.hits,
            shed: after.shed - before.shed,
            harvests: after.harvests - before.harvests,
        },
    }
}

/// External (client-measured, scheduled-arrival-to-response) vs
/// self-reported (server histogram, admission-to-response) quantile
/// agreement. The external side includes connect time and one bucket of
/// histogram rounding, so the bracket is one log-linear bucket
/// ([`denali_metrics::RESOLUTION`]) on each side plus a fixed connect
/// allowance.
fn quantiles_bracket(external_ms: f64, server_ms: f64) -> bool {
    const CONNECT_SLACK_MS: f64 = 3.0;
    let tolerance =
        2.0 * denali_metrics::RESOLUTION * external_ms.max(server_ms) + CONNECT_SLACK_MS;
    (external_ms - server_ms).abs() <= tolerance
}

/// The one-sided half of [`quantiles_bracket`]: the server must never
/// self-report *slower* than its clients actually observed. This is the
/// only bound that is physical on the stampede leg — a barrier-released
/// herd deliberately saturates the accept/read path, and that
/// pre-admission queueing is visible to clients but, by definition, not
/// to an admission-to-response histogram.
fn server_not_slower(external_ms: f64, server_ms: f64) -> bool {
    const CONNECT_SLACK_MS: f64 = 3.0;
    server_ms <= external_ms * (1.0 + 2.0 * denali_metrics::RESOLUTION) + CONNECT_SLACK_MS
}

/// The mixed leg: 1-in-4 requests draw from a 4-program hot set (so
/// repeats arrive both while a leader is in flight and after it has
/// cached), the rest are unique cold compiles.
fn mixed_leg(server: &Arc<Server>, addr: std::net::SocketAddr, config: &Config) -> Leg {
    let before = counters(server);
    let histogram_before = server.metrics().stage_total.snapshot();
    let start = Instant::now();
    let period = Duration::from_secs_f64(1.0 / config.rate.max(1e-6));
    let results: Arc<Mutex<Vec<(String, Duration)>>> = Arc::default();
    let mut senders = Vec::new();
    for i in 0..config.requests {
        let scheduled = start + period * i as u32;
        if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let line = if i % 4 == 0 {
            compile_line(&format!("hot{i}"), &source(1_000_000 + (i / 4) % 4))
        } else {
            compile_line(&format!("uniq{i}"), &source(i))
        };
        let results = Arc::clone(&results);
        senders.push(
            std::thread::Builder::new()
                .name("load-client".to_owned())
                .spawn(move || {
                    let outcome = round_trip(addr, &line, scheduled);
                    results.lock().unwrap().push(outcome);
                })
                .expect("spawn client"),
        );
    }
    for handle in senders {
        handle.join().expect("client thread");
    }
    let outcomes = std::mem::take(&mut *results.lock().unwrap());
    let histogram = server
        .metrics()
        .stage_total
        .snapshot()
        .since(&histogram_before);
    finish_leg("mixed", outcomes, before, counters(server), &histogram)
}

/// The stampede leg: K connections release one identical, never-seen
/// request each at the same instant.
fn stampede_leg(server: &Arc<Server>, addr: std::net::SocketAddr, config: &Config) -> Leg {
    let before = counters(server);
    let histogram_before = server.metrics().stage_total.snapshot();
    let line = Arc::new(compile_line("stampede", &source(2_000_000)));
    let barrier = Arc::new(Barrier::new(config.stampede));
    let results: Arc<Mutex<Vec<(String, Duration)>>> = Arc::default();
    let clients: Vec<_> = (0..config.stampede)
        .map(|_| {
            let (line, barrier, results) = (
                Arc::clone(&line),
                Arc::clone(&barrier),
                Arc::clone(&results),
            );
            std::thread::Builder::new()
                .name("stampede-client".to_owned())
                .spawn(move || {
                    // Connect before the barrier so the release is as
                    // simultaneous as the scheduler allows.
                    let stream = TcpStream::connect(addr).expect("connect");
                    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
                    let mut writer = stream;
                    barrier.wait();
                    let scheduled = Instant::now();
                    writer
                        .write_all(format!("{line}\n").as_bytes())
                        .expect("send request");
                    let mut response = String::new();
                    reader.read_line(&mut response).expect("read response");
                    let latency = scheduled.elapsed();
                    let v = json::parse(response.trim()).expect("response parses");
                    let status = v.get("status").and_then(Json::as_str).unwrap_or("error");
                    results.lock().unwrap().push((status.to_owned(), latency));
                })
                .expect("spawn client")
        })
        .collect();
    for handle in clients {
        handle.join().expect("stampede client");
    }
    let outcomes = std::mem::take(&mut *results.lock().unwrap());
    let histogram = server
        .metrics()
        .stage_total
        .snapshot()
        .since(&histogram_before);
    finish_leg("stampede", outcomes, before, counters(server), &histogram)
}

/// The deadline leg: W concurrent `engine: auto` requests, one per
/// worker so none of them queues — a queued request's deadline would
/// expire before its stochastic prepass even ran, which tests the
/// queue, not the harvest path. Runs against its *own* server built on
/// default options: the heavy byteswap fixtures need the full
/// saturation budget to reproduce the slow-DPLL / fast-prepass shape
/// that [`fast_options`] deliberately removes.
fn deadline_leg(config: &Config) -> Leg {
    let server = Arc::new(
        Server::new(ServerConfig {
            workers: config.workers,
            queue: config.queue,
            ..ServerConfig::default()
        })
        .expect("deadline server"),
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    {
        let server = Arc::clone(&server);
        std::thread::Builder::new()
            .name("deadline-accept".to_owned())
            .spawn(move || serve_listener(&server, &listener))
            .expect("spawn acceptor");
    }
    let before = counters(&server);
    let histogram_before = server.metrics().stage_total.snapshot();
    let barrier = Arc::new(Barrier::new(config.workers));
    let results: Arc<Mutex<Vec<(String, Duration)>>> = Arc::default();
    let clients: Vec<_> = (0..config.workers)
        .map(|i| {
            let line = deadline_line(
                &format!("deadline{i}"),
                &heavy_source(i),
                config.deadline_ms,
            );
            let (barrier, results) = (Arc::clone(&barrier), Arc::clone(&results));
            std::thread::Builder::new()
                .name("deadline-client".to_owned())
                .spawn(move || {
                    barrier.wait();
                    let scheduled = Instant::now();
                    let (v, latency) = exchange(addr, &line, scheduled);
                    let degraded = v.get("degraded").and_then(Json::as_bool) == Some(true);
                    let engine = v.get("engine").and_then(Json::as_str).unwrap_or("");
                    // "ok" here means *harvested*: in time (no degrade)
                    // AND answered by the stochastic engine. A SAT
                    // answer would mean the fixture finished before the
                    // deadline and the leg measured nothing.
                    let status = match v.get("status").and_then(Json::as_str) {
                        Some("ok") if degraded => "degraded",
                        Some("ok") if engine != "stochastic" => "error",
                        Some(status) => status,
                        None => "error",
                    };
                    results.lock().unwrap().push((status.to_owned(), latency));
                })
                .expect("spawn client")
        })
        .collect();
    for handle in clients {
        handle.join().expect("deadline client");
    }
    let outcomes = std::mem::take(&mut *results.lock().unwrap());
    let histogram = server
        .metrics()
        .stage_total
        .snapshot()
        .since(&histogram_before);
    finish_leg("deadline", outcomes, before, counters(&server), &histogram)
}

fn render(config: &Config, legs: &[Leg]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"denali-serve-load-v3\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"requests\": {}, \"rate\": {}, \"stampede\": {}, \"workers\": {}, \"queue\": {}, \"deadline_ms\": {}}},\n",
        config.requests, config.rate, config.stampede, config.workers, config.queue, config.deadline_ms
    ));
    out.push_str("  \"legs\": [\n");
    for (i, leg) in legs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"requests\": {}, \"ok\": {}, \"degraded\": {}, \"errors\": {}, \
\"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \
\"server_p50_ms\": {:.3}, \"server_p95_ms\": {:.3}, \"server_p99_ms\": {:.3}, \
\"executions\": {}, \"coalesced\": {}, \
\"coalesce_ratio\": {:.4}, \"cache_hits\": {}, \"shed\": {}, \"shed_rate\": {:.4}, \
\"stoke_harvests\": {}}}{}\n",
            leg.name,
            leg.requests,
            leg.ok,
            leg.degraded,
            leg.errors,
            leg.p50_ms,
            leg.p95_ms,
            leg.p99_ms,
            leg.server_p50_ms,
            leg.server_p95_ms,
            leg.server_p99_ms,
            leg.delta.executions,
            leg.delta.coalesced,
            leg.coalesce_ratio(),
            leg.delta.hits,
            leg.delta.shed,
            leg.shed_rate(),
            leg.delta.harvests,
            if i + 1 < legs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let config = parse_args();
    let server = Arc::new(
        Server::new(ServerConfig {
            base: fast_options(),
            workers: config.workers,
            queue: config.queue,
            ..ServerConfig::default()
        })
        .expect("server"),
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    {
        let server = Arc::clone(&server);
        std::thread::Builder::new()
            .name("serve-accept".to_owned())
            .spawn(move || serve_listener(&server, &listener))
            .expect("spawn acceptor");
    }

    let legs = vec![
        mixed_leg(&server, addr, &config),
        stampede_leg(&server, addr, &config),
        deadline_leg(&config),
    ];
    for leg in &legs {
        println!(
            "{:<9} requests={:<4} ok={:<4} degraded={:<3} errors={:<3} p50={:>8.2}ms p95={:>8.2}ms p99={:>8.2}ms executions={:<4} coalesced={:<4} hits={:<4} shed={} harvests={}",
            leg.name,
            leg.requests,
            leg.ok,
            leg.degraded,
            leg.errors,
            leg.p50_ms,
            leg.p95_ms,
            leg.p99_ms,
            leg.delta.executions,
            leg.delta.coalesced,
            leg.delta.hits,
            leg.delta.shed,
            leg.delta.harvests,
        );
        println!(
            "{:<9} server-reported                          p50={:>8.2}ms p95={:>8.2}ms p99={:>8.2}ms",
            leg.name, leg.server_p50_ms, leg.server_p95_ms, leg.server_p99_ms,
        );
    }

    let report = render(&config, &legs);
    std::fs::write(&config.out, &report).expect("write report");
    println!("wrote {}", config.out);

    // Headline invariants, checked on every run. Stampede: K identical
    // requests execute the pipeline exactly once.
    let stampede = legs
        .iter()
        .find(|leg| leg.name == "stampede")
        .expect("stampede leg");
    assert_eq!(
        stampede.delta.executions, 1,
        "stampede must execute the pipeline exactly once"
    );
    assert_eq!(
        stampede.delta.coalesced + stampede.delta.hits,
        (config.stampede - 1) as u64,
        "every non-leader must be answered by the coalescer or the cache"
    );

    // Deadline: every expired `engine: auto` request is *harvested* —
    // a verified stochastic answer, not a degraded baseline — and each
    // harvest comes from a real execution, never from the cache (the
    // answer depends on when the deadline fired, not the program).
    let deadline = legs
        .iter()
        .find(|leg| leg.name == "deadline")
        .expect("deadline leg");
    assert_eq!(
        deadline.ok, deadline.requests,
        "every deadline request must come back harvested (stochastic, non-degraded)"
    );
    assert_eq!(deadline.degraded, 0, "no deadline request may degrade");
    assert_eq!(
        deadline.delta.harvests, deadline.requests as u64,
        "the server must count one stoke harvest per deadline request"
    );
    assert_eq!(
        deadline.delta.executions, deadline.requests as u64,
        "distinct fixtures must neither coalesce nor hit the cache"
    );

    // Cross-validation: the server's self-reported latency histogram
    // must agree with what the clients actually experienced, on every
    // leg and at every reported quantile. The open-loop mixed leg gets
    // the two-sided bracket; the stampede leg (where pre-admission
    // queueing is client-visible only) gets the one-sided bound.
    for leg in &legs {
        for (q, external, server_side) in [
            ("p50", leg.p50_ms, leg.server_p50_ms),
            ("p95", leg.p95_ms, leg.server_p95_ms),
            ("p99", leg.p99_ms, leg.server_p99_ms),
        ] {
            let agree = if leg.name == "mixed" {
                quantiles_bracket(external, server_side)
            } else {
                server_not_slower(external, server_side)
            };
            assert!(
                agree,
                "{} {q}: external {external:.3} ms vs server-reported {server_side:.3} ms \
                 disagree beyond one histogram bucket + connect slack",
                leg.name,
            );
        }
    }
}
