//! Stochastic-engine bench: runs the MCMC chain on the simulator-
//! supported fixtures at the fixed default seed and records, per GMA,
//! the baseline and best verified cycle counts plus the full best-cost
//! trajectory (proposal index, cycles). The chain is a pure function of
//! (machine, sketch, rules, seed), so the output is byte-deterministic
//! across runs and thread counts — CI validates the committed
//! `BENCH_stoke.json` against a fresh run.
//!
//! The binary asserts the headline invariant itself: on at least one
//! fixture the chain strictly beats the greedy baseline (byteswap4:
//! 6 cycles vs 7 at the default seed).

use denali_bench::{default_denali, programs};

struct Config {
    out: String,
}

fn parse_args() -> Config {
    let mut config = Config {
        out: "BENCH_stoke.json".to_owned(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => config.out = args.next().expect("--out needs a path"),
            other => panic!("unknown argument: {other} (supported: --out <path>)"),
        }
    }
    config
}

fn main() {
    let config = parse_args();
    let denali = default_denali();
    let fixtures = [
        ("figure2", programs::FIGURE2),
        ("byteswap4", programs::BYTESWAP4),
        ("byteswap5", programs::BYTESWAP5),
    ];

    let mut json = String::from("{\"schema\":\"denali-stoke-bench-v1\",\"fixtures\":[");
    let mut improved_any = false;
    let mut first = true;
    println!(
        "{:<12} {:<20} {:>8} {:>6} {:>10} {:>9} {:>9}",
        "fixture", "gma", "baseline", "best", "proposals", "accepted", "improved"
    );
    for (name, source) in fixtures {
        let runs = denali.stoke_profile(source).expect("fixture profiles");
        assert!(!runs.is_empty(), "{name}: no simulator-supported GMA");
        for run in runs {
            println!(
                "{:<12} {:<20} {:>8} {:>6} {:>10} {:>9} {:>9}",
                name,
                run.gma,
                run.baseline_cycles,
                run.best_cycles,
                run.proposals,
                run.accepted,
                run.improved,
            );
            assert!(
                run.best_cycles <= run.baseline_cycles,
                "{name}/{}: chain worse than its own starting point",
                run.gma
            );
            improved_any |= run.improved;
            if !first {
                json.push(',');
            }
            first = false;
            json.push_str(&format!(
                concat!(
                    "{{\"fixture\":\"{}\",\"gma\":\"{}\",",
                    "\"baseline_cycles\":{},\"best_cycles\":{},\"improved\":{},",
                    "\"proposals\":{},\"accepted\":{},\"restarts\":{},",
                    "\"trajectory\":["
                ),
                name,
                run.gma,
                run.baseline_cycles,
                run.best_cycles,
                run.improved,
                run.proposals,
                run.accepted,
                run.restarts,
            ));
            for (i, (proposal, cycles)) in run.trajectory.iter().enumerate() {
                if i > 0 {
                    json.push(',');
                }
                json.push_str(&format!("[{proposal},{cycles}]"));
            }
            json.push_str("]}");
        }
    }
    json.push_str("]}\n");

    assert!(
        improved_any,
        "the chain must beat the baseline on at least one fixture"
    );
    std::fs::write(&config.out, &json).expect("write report");
    println!("wrote {}", config.out);
}
