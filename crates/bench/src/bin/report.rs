//! Regenerates every experiment of the paper's evaluation and prints
//! paper-versus-measured rows (the source of `EXPERIMENTS.md`).
//!
//! Run with `cargo run --release -p denali-bench --bin report`.
//! Pass experiment ids (`e1 e3 ...`) to run a subset.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use denali_arch::Machine;
use denali_axioms::{alpha_axioms, math_axioms, saturate, SaturationLimits};
use denali_baseline::{brute_search, rewrite_compile, BruteConfig};
use denali_bench::{compile_checked, default_denali, programs};
use denali_core::{Denali, Options, SolverChoice};
use denali_egraph::EGraph;
use denali_lang::{lower_proc, parse_program};
use denali_sat::SolverConfig;
use denali_term::Term;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a.eq_ignore_ascii_case(id));

    println!("Denali reproduction — experiment report");
    println!("=======================================\n");
    if want("e1") {
        e1_matching();
    }
    if want("e2") {
        e2_ac_ways();
    }
    if want("e2s") {
        e2_saturation();
    }
    if want("e2m") {
        e2_memory();
    }
    if want("e3") {
        e3_byteswap4();
    }
    if want("e4") {
        e4_sat_sizes();
    }
    if want("e5") {
        e5_byteswap5();
    }
    if want("e5s") {
        e5_serve();
    }
    if want("e6") {
        e6_bruteforce();
    }
    if want("e7") {
        e7_checksum();
    }
    if want("e7s") {
        e7s_stochastic();
    }
    if want("e8") {
        e8_extras();
    }
    if want("a1") {
        a1_ablations();
    }
    if want("r1") {
        r1_retargeting();
    }
}

fn header(id: &str, title: &str, paper: &str) {
    println!("--- {id}: {title}");
    println!("    paper: {paper}");
}

/// E1 (Figure 2): matching discovers mul+add, shift+add, and s4addq ways
/// of computing reg6*4 + 1.
fn e1_matching() {
    header(
        "E1",
        "Figure 2 matching walkthrough",
        "E-graph ends with multiply-add, shift-add, and s4addl ways of reg6*4+1",
    );
    let mut eg = EGraph::new();
    let goal = eg
        .add_term(&Term::call(
            "add64",
            vec![
                Term::call("mul64", vec![Term::leaf("reg6"), Term::constant(4)]),
                Term::constant(1),
            ],
        ))
        .unwrap();
    let mul = eg
        .lookup_term(&Term::call(
            "mul64",
            vec![Term::leaf("reg6"), Term::constant(4)],
        ))
        .unwrap();
    let mut axioms = math_axioms();
    axioms.extend(alpha_axioms());
    let report = saturate(&mut eg, &axioms, &SaturationLimits::default()).unwrap();
    let goal_ops = denali_axioms::class_ops(&eg, goal);
    let mul_ops = denali_axioms::class_ops(&eg, mul);
    println!(
        "    measured: goal class ops = {goal_ops:?}\n              mul class ops = {mul_ops:?}"
    );
    println!(
        "              pow(2,2) in 4's class: {}",
        eg.lookup_term(&Term::call(
            "pow",
            vec![Term::constant(2), Term::constant(2)]
        ))
        .map(|c| eg.find(c) == eg.find(eg.constant_class(4).unwrap()))
        .unwrap_or(false)
    );
    println!(
        "              ways of computing the goal (depth 6): {}",
        eg.count_ways(goal, 6)
    );
    println!(
        "              e-graph: {} nodes, {} classes, saturated={}\n",
        report.nodes, report.classes, report.saturated
    );
}

/// E2 (§5): a+b+c+d+e has "more than a hundred different ways".
fn e2_ac_ways() {
    header(
        "E2",
        "AC ways of a+b+c+d+e",
        "matcher finds more than a hundred different ways",
    );
    let mut eg = EGraph::new();
    let sum = eg
        .add_term(
            &Term::from_sexpr(
                &denali_term::sexpr::parse_one("(add64 a (add64 b (add64 c (add64 d e))))")
                    .unwrap(),
                &[],
            )
            .unwrap(),
        )
        .unwrap();
    let limits = SaturationLimits {
        max_iterations: 24,
        ..SaturationLimits::default()
    };
    let t = Instant::now();
    let report = saturate(&mut eg, &math_axioms(), &limits).unwrap();
    let ways = eg.count_ways(sum, 8);
    println!(
        "    measured: {ways} ways (depth 8), {} nodes, {} classes, {:?}\n",
        report.nodes,
        report.classes,
        t.elapsed()
    );
}

/// E2s: delta-driven e-matching — per-round matched-vs-skipped
/// candidates and wall time, full versus delta, on the AC workhorse.
fn e2_saturation() {
    header(
        "E2s",
        "Delta-driven saturation rounds",
        "identical instances; post-first-scan rounds re-match only the dirty cone",
    );
    let term = Term::from_sexpr(
        &denali_term::sexpr::parse_one("(add64 a (add64 b (add64 c (add64 d e))))").unwrap(),
        &[],
    )
    .unwrap();
    let run = |delta: bool| {
        let mut eg = EGraph::new();
        eg.add_term(&term).unwrap();
        let limits = SaturationLimits {
            max_iterations: 24,
            delta_match: delta,
            ..SaturationLimits::default()
        };
        let t = Instant::now();
        let report = saturate(&mut eg, &math_axioms(), &limits).unwrap();
        (report, t.elapsed())
    };
    let (full, full_t) = run(false);
    let (delta, delta_t) = run(true);
    println!("    measured: round  mode    scanned  skipped  instances      ms");
    for (i, r) in delta.rounds.iter().enumerate() {
        let mode = if r.verification {
            "verify"
        } else if r.full {
            "full"
        } else {
            "delta"
        };
        println!(
            "              {i:>5}  {mode:<6}  {:>7}  {:>7}  {:>9}  {:>6.1}",
            r.scanned, r.skipped, r.instances, r.ms
        );
    }
    println!(
        "              full:  {} candidates scanned, {} instances, {:?}",
        full.scanned_candidates, full.instances, full_t
    );
    println!(
        "              delta: {} scanned + {} skipped, {} instances, {:?}",
        delta.scanned_candidates, delta.skipped_candidates, delta.instances, delta_t
    );
    println!(
        "              identical results: {}\n",
        full.instances == delta.instances
            && full.nodes == delta.nodes
            && full.classes == delta.classes
    );
}

/// E2m (not in the paper): arena/SoA storage footprint — bytes per
/// e-graph node under the interned-slice arena versus the modeled
/// owned-`ENode` layout, on the saturated benchmark fixtures. The same
/// legs as the `egraph_mem` binary, which writes `BENCH_egraph.json`.
fn e2_memory() {
    header(
        "E2m",
        "e-graph memory footprint (arena/SoA vs owned nodes)",
        "goal: >=2x fewer bytes per node with saturation wall time no worse",
    );
    let aggregate = |name: &'static str, source: &str| {
        let denali = default_denali();
        let result = denali.compile_source(source).expect("fixture compiles");
        let mut mem = denali_egraph::MemoryStats::default();
        for gma in &result.gmas {
            let m = gma.egraph_memory;
            mem.nodes += m.nodes;
            mem.classes += m.classes;
            mem.slice_entries += m.slice_entries;
            mem.slice_refs += m.slice_refs;
            mem.total_bytes += m.total_bytes;
            mem.legacy_bytes += m.legacy_bytes;
        }
        (name, mem)
    };
    let chain = {
        let term = Term::from_sexpr(
            &denali_term::sexpr::parse_one("(add64 a (add64 b (add64 c (add64 d e))))").unwrap(),
            &[],
        )
        .unwrap();
        let limits = SaturationLimits {
            max_iterations: 24,
            ..SaturationLimits::default()
        };
        let mut eg = EGraph::new();
        eg.add_term(&term).unwrap();
        saturate(&mut eg, &math_axioms(), &limits).unwrap();
        ("e2_chain", eg.memory_stats())
    };
    let legs = [
        chain,
        aggregate("figure2", programs::FIGURE2),
        aggregate("byteswap4", programs::BYTESWAP4),
        aggregate("byteswap5", programs::BYTESWAP5),
        aggregate("checksum", programs::CHECKSUM),
    ];
    println!("    measured: leg         nodes  classes  bytes/node  legacy b/n  reduction  dedup");
    for (name, m) in &legs {
        println!(
            "              {name:<10} {:>6} {:>8} {:>11.1} {:>11.1} {:>9.2}x {:>5.2}x",
            m.nodes,
            m.classes,
            m.bytes_per_node(),
            m.legacy_bytes_per_node(),
            m.reduction(),
            m.dedup_ratio(),
        );
    }
    println!();
}

/// E3 (§8, Figure 4): byteswap4 — 5-cycle EV6 program; ~1 minute total
/// with <0.3 s in the SAT solver.
fn e3_byteswap4() {
    header(
        "E3",
        "byteswap4 code generation",
        "5 cycles (optimal to the authors' knowledge); ~1 min total, <0.3 s SAT",
    );
    let denali = default_denali();
    let t = Instant::now();
    let result = compile_checked(
        &denali,
        programs::BYTESWAP4,
        &[("a", 0x11223344)],
        &HashMap::new(),
    );
    let total = t.elapsed();
    let compiled = &result.gmas[0];
    println!(
        "    measured: {} cycles ({}), {} instructions, total {total:.2?}, match {:.2} s, SAT {:.3} s",
        compiled.cycles,
        if compiled.refuted_below {
            "K-1 refuted"
        } else {
            "no refutation"
        },
        compiled.program.len(),
        compiled.match_ms / 1e3,
        compiled.solver_ms() / 1e3,
    );
    println!("{}", indent(&compiled.program.listing(4), 4));
}

/// E4 (§8): SAT problem sizes for byteswap4 across cycle budgets.
fn e4_sat_sizes() {
    header(
        "E4",
        "byteswap4 SAT problem sizes",
        "1639 vars / 4613 clauses at the 4-cycle refutation up to 9203 / 26415 at 8 cycles",
    );
    // Per-budget formula sizes want fresh per-probe solvers; the
    // incremental run below reports cumulative live-solver sizes.
    let denali = Denali::new(Options {
        incremental: false,
        ..default_denali().options().clone()
    });
    let result = denali
        .compile_source(programs::BYTESWAP4)
        .expect("compiles");
    let compiled = &result.gmas[0];
    let mut probes = compiled.probes.clone();
    probes.sort_by_key(|p| p.k);
    for p in &probes {
        println!(
            "    measured: K={}: {:6} vars, {:7} clauses -> {}  ({:.1} ms solve)",
            p.k,
            p.vars,
            p.clauses,
            if p.satisfiable { "SAT" } else { "UNSAT" },
            p.solve_ms
        );
    }

    // The same search on one persistent solver probed under
    // assumptions: probe order, with learned clauses carried into each
    // probe from its predecessors.
    let incremental = Denali::new(Options {
        threads: 1,
        incremental: true,
        ..default_denali().options().clone()
    });
    let result = incremental
        .compile_source(programs::BYTESWAP4)
        .expect("compiles");
    let compiled = &result.gmas[0];
    println!("    incremental (one solver, probe order):");
    for p in &compiled.probes {
        let carried = p.solver.map_or(0, |s| s.carried_learned);
        println!(
            "    measured: K={}: -> {:5}  carrying {:4} learned clauses  ({:.1} ms solve)",
            p.k,
            if p.satisfiable { "SAT" } else { "UNSAT" },
            carried,
            p.solve_ms
        );
    }
    println!(
        "    measured: {} learned clauses reused across {} probes",
        compiled.carried_clauses(),
        compiled.probes.len()
    );

    // E4p: the same probes raced across a portfolio of diversified CDCL
    // configurations (first verdict wins, losers cancelled). The output
    // is pinned byte-identical to the single-solver runs above; what
    // the race changes is *which* strategy answers each probe first.
    const WIDTH: usize = 4;
    let portfolio = Denali::new(Options {
        portfolio: WIDTH,
        incremental: false,
        ..default_denali().options().clone()
    });
    let result = portfolio
        .compile_source(programs::BYTESWAP4)
        .expect("compiles");
    let compiled = &result.gmas[0];
    let mut wins = [0usize; WIDTH];
    for p in &compiled.probes {
        let winner = p.winner.expect("portfolio probes record a winner") as usize;
        wins[winner] += 1;
    }
    println!(
        "    portfolio (width {WIDTH}, {} probes) — wins per configuration:",
        compiled.probes.len()
    );
    for (i, count) in wins.iter().enumerate() {
        println!(
            "    measured: config {i} [{}]: {count:2} wins",
            SolverConfig::diversified(i)
        );
    }
    println!();
}

/// E5 (§8): byteswap5 — Denali one cycle better than the C compiler.
fn e5_byteswap5() {
    header(
        "E5",
        "byteswap5 vs conventional compiler",
        "Denali does one cycle better than the production C compiler",
    );
    let denali = default_denali();
    let result = compile_checked(
        &denali,
        programs::BYTESWAP5,
        &[("a", 0x1122334455)],
        &HashMap::new(),
    );
    let ours = &result.gmas[0];

    // The conventional baseline on the same GMA.
    let program = parse_program(programs::BYTESWAP5).unwrap();
    let gma = lower_proc(&program.procs[0]).unwrap().remove(0);
    let machine = Machine::ev6();
    let baseline = rewrite_compile(&gma, &machine).expect("baseline compiles");
    println!(
        "    measured: Denali {} cycles / {} instrs;  rewriting compiler {} cycles / {} instrs  (Δ = {} cycles)",
        ours.cycles,
        ours.program.len(),
        baseline.cycles(),
        baseline.len(),
        baseline.cycles() as i64 - ours.cycles as i64,
    );
    // byteswap4 comparison too (paper: the C compiler *ties* 5 cycles
    // given helpful shift/or input).
    let result4 = denali
        .compile_source(programs::BYTESWAP4)
        .expect("compiles");
    let program4 = parse_program(programs::BYTESWAP4).unwrap();
    let gma4 = lower_proc(&program4.procs[0]).unwrap().remove(0);
    let baseline4 = rewrite_compile(&gma4, &machine).expect("baseline compiles");
    println!(
        "              byteswap4: Denali {} cycles; rewriting compiler {} cycles\n",
        result4.gmas[0].cycles,
        baseline4.cycles(),
    );
}

/// E5s (not in the paper): the serving layer — cold-miss compile vs
/// warm cache hit vs degraded-deadline fallback, over the example GMAs.
fn e5_serve() {
    use denali_serve::{Server, ServerConfig};
    header(
        "E5s",
        "compilation server: cold / warm / degraded",
        "persistent server amortizes the paper's repeated-invocation workload (§1, §6)",
    );
    let config = ServerConfig {
        base: Options {
            threads: denali_bench::bench_threads(),
            ..Options::default()
        },
        ..ServerConfig::default()
    };
    let server = Server::new(config.clone()).unwrap();
    // Degraded requests go to a second server so the first one's warm
    // cache cannot answer them (a hit satisfies any deadline).
    let fallback = Server::new(config).unwrap();
    let compile_line = |source: &str, extra: &str| {
        let mut src = String::new();
        denali_trace::json::write_str(&mut src, source);
        format!(r#"{{"type":"compile","id":"r","source":{src}{extra}}}"#)
    };
    let timed = |server: &Server, line: &str| {
        let t = Instant::now();
        let response = server.handle_line(line).expect("response");
        (response, t.elapsed())
    };
    println!(
        "    measured: program        cold ms   warm ms   degraded ms   warm==cold   cold/warm"
    );
    for (name, source) in [
        ("figure2", programs::FIGURE2),
        ("wordswap32", programs::WORDSWAP32),
        ("lcp2", programs::LCP2),
    ] {
        let line = compile_line(source, "");
        let (cold, cold_t) = timed(&server, &line);
        let (warm, warm_t) = timed(&server, &line);
        let late = compile_line(source, r#","deadline_ms":0"#);
        let (_degraded, degraded_t) = timed(&fallback, &late);
        println!(
            "              {name:<12} {:>8.1}  {:>8.3}  {:>12.3}   {:<10}  {:>8.0}x",
            cold_t.as_secs_f64() * 1e3,
            warm_t.as_secs_f64() * 1e3,
            degraded_t.as_secs_f64() * 1e3,
            cold == warm,
            cold_t.as_secs_f64() / warm_t.as_secs_f64().max(1e-9),
        );
    }
    let snap = server.cache().snapshot();
    println!(
        "              cache: {} hits / {} misses, {} entries, {} bytes resident\n",
        snap.hits, snap.misses, snap.entries, snap.bytes
    );
}

/// E6 (§8): brute-force superoptimizer scaling vs Denali's goal-directed
/// search.
fn e6_bruteforce() {
    header(
        "E6",
        "brute force vs goal-directed search",
        "GNU superoptimizer: 5-instruction sequences OK, longer took days; Denali: 31 instrs in ~4 h",
    );
    // Targets of increasing optimal length.
    type Target = (&'static str, usize, Box<dyn Fn(&[u64]) -> u64>);
    let targets: Vec<Target> = vec![
        ("x+x", 1, Box::new(|i: &[u64]| i[0].wrapping_add(i[0]))),
        ("(x&255)<<8", 2, Box::new(|i: &[u64]| (i[0] & 0xff) << 8)),
        (
            "byte0->3 | byte3->0",
            3,
            Box::new(|i: &[u64]| ((i[0] & 0xff) << 24) | ((i[0] >> 24) & 0xff)),
        ),
        (
            "swap bytes 0,1",
            4,
            Box::new(|i: &[u64]| (i[0] & !0xffffu64) | ((i[0] & 0xff) << 8) | ((i[0] >> 8) & 0xff)),
        ),
    ];
    for (name, hint, target) in &targets {
        let config = BruteConfig {
            max_len: *hint,
            timeout: Duration::from_secs(120),
            ..BruteConfig::default()
        };
        let t = Instant::now();
        let (found, stats) = brute_search(target.as_ref(), 1, &config);
        println!(
            "    measured: brute force {:22} len<={hint}: {} in {:?} ({} sequences, timed_out={})",
            name,
            found
                .map(|p| format!("found {} instrs", p.len()))
                .unwrap_or_else(|| "NOT FOUND".into()),
            t.elapsed(),
            stats.sequences_tested,
            stats.timed_out,
        );
    }
    // Denali on byteswap4 (9 machine instructions) for contrast.
    let denali = default_denali();
    let t = Instant::now();
    let result = denali.compile_source(programs::BYTESWAP4).unwrap();
    println!(
        "    measured: Denali byteswap4 ({} instrs): {:?} — goal-directed search does not enumerate sequences\n",
        result.gmas[0].program.len(),
        t.elapsed()
    );
}

/// E7 (§8, Figures 5-6): the checksum inner loop.
fn e7_checksum() {
    header(
        "E7",
        "checksum inner loop",
        "10 cycles and 31 instructions for the 4x-unrolled pipelined body (~4 h generation)",
    );
    let denali = default_denali();
    let memory: HashMap<u64, u64> = (0..16u64).map(|i| (64 + 8 * i, 0x1111 * (i + 1))).collect();
    let t = Instant::now();
    let result = compile_checked(
        &denali,
        programs::CHECKSUM,
        &[("ptr", 64), ("ptrend", 128)],
        &memory,
    );
    let total = t.elapsed();
    let body = result
        .gmas
        .iter()
        .find(|g| g.gma.name.contains("loop"))
        .expect("loop GMA");
    println!(
        "    measured: unrolled+pipelined loop body: {} cycles, {} instructions (total pipeline {total:.2?})",
        body.cycles,
        body.program.len()
    );
    let serial = compile_checked(
        &denali,
        programs::CHECKSUM_SERIAL,
        &[("ptr", 64), ("ptrend", 128)],
        &memory,
    );
    let serial_body = serial
        .gmas
        .iter()
        .find(|g| g.gma.name.contains("loop"))
        .expect("loop GMA");
    let per4_unrolled = body.cycles as f64 / 4.0;
    let per4_serial = serial_body.cycles as f64;
    println!(
        "              serial body: {} cycles per element vs {:.2} cycles per element unrolled+pipelined ({:.1}x)",
        serial_body.cycles,
        per4_unrolled,
        per4_serial / per4_unrolled
    );
    // Extension: the paper's unimplemented software-pipelining design,
    // mechanized. The natural (non-pipelined) source recovers the
    // hand-pipelined schedule automatically.
    for (label, pipeline) in [
        ("natural source, no pipelining", false),
        ("with automatic pipelining", true),
    ] {
        let denali = Denali::new(Options {
            pipeline_loads: pipeline,
            threads: denali_bench::bench_threads(),
            ..Options::default()
        });
        let result = denali
            .compile_source(programs::CHECKSUM_AUTO)
            .expect("compiles");
        let auto_body = result
            .gmas
            .iter()
            .find(|g| g.gma.guard.is_some())
            .expect("loop body");
        println!(
            "              {label}: {} cycles, {} instructions",
            auto_body.cycles,
            auto_body.program.len()
        );
    }
    println!("{}", indent(&body.program.listing(4), 4));
}

/// E7s (extension, no paper counterpart): the stochastic MCMC second
/// engine on the simulator-supported fixtures, against the greedy
/// rewrite baseline it starts from. The checksum loops of E7 carry
/// guarded memory traffic the chain cannot simulate, so the engine
/// sits those out (`--engine auto` falls back to SAT there); these
/// fixtures pin what it does on its supported fragment.
fn e7s_stochastic() {
    header(
        "E7s",
        "stochastic second engine",
        "(extension) STOKE-style MCMC: verified best vs the greedy baseline",
    );
    let denali = default_denali();
    println!(
        "    {:<20} {:>8} {:>6} {:>10} {:>9} {:>9} {:>9}",
        "gma", "baseline", "best", "proposals", "accepted", "restarts", "improved"
    );
    for source in [programs::FIGURE2, programs::BYTESWAP4, programs::BYTESWAP5] {
        for run in denali.stoke_profile(source).expect("chain profiles") {
            println!(
                "    {:<20} {:>8} {:>6} {:>10} {:>9} {:>9} {:>9}",
                run.gma,
                run.baseline_cycles,
                run.best_cycles,
                run.proposals,
                run.accepted,
                run.restarts,
                run.improved,
            );
        }
    }
    println!();
}

/// E8 (§8): the additional tests — rowop and least common power of 2.
fn e8_extras() {
    header(
        "E8",
        "additional tests (rowop, lcp2)",
        "Denali handles the rowop matrix routine and the least-common-power-of-2 problem",
    );
    let denali = default_denali();
    let memory: HashMap<u64, u64> = (0..16u64).map(|i| (64 + 8 * i, 7 * (i + 1))).collect();
    let rowop = compile_checked(
        &denali,
        programs::ROWOP,
        &[("p", 64), ("q", 128), ("r", 1024), ("c", 3)],
        &memory,
    );
    let body = rowop.main();
    println!(
        "    measured: rowop loop body: {} cycles, {} instructions (mulq latency dominates)",
        body.cycles,
        body.program.len()
    );
    let lcp2 = compile_checked(
        &denali,
        programs::LCP2,
        &[("a", 48), ("b", 80)],
        &HashMap::new(),
    );
    println!(
        "    measured: lcp2: {} cycles, {} instructions",
        lcp2.gmas[0].cycles,
        lcp2.gmas[0].program.len()
    );
    // Solver-substitution check (the paper swapped SAT solvers freely):
    // the DPLL engine must agree with CDCL on a small problem.
    let dpll = Denali::new(Options {
        solver: SolverChoice::Dpll,
        threads: denali_bench::bench_threads(),
        ..Options::default()
    });
    let via_dpll = dpll.compile_source(programs::LCP2).unwrap();
    println!(
        "              solver substitution: DPLL engine also finds {} cycles\n",
        via_dpll.gmas[0].cycles
    );
}

/// A1: ablations of this reproduction's design choices — the matcher's
/// structural budget (the main "near-optimal" knob) and the machine
/// model's cluster penalty.
fn a1_ablations() {
    header(
        "A1",
        "ablations (not in the paper)",
        "sensitivity of byteswap4 to the matcher budget and the cluster model",
    );
    for growth in [500usize, 1000, 2000, 4000, 8000] {
        let denali = Denali::new(Options {
            saturation: denali_axioms::SaturationLimits {
                max_structural_growth: growth,
                ..denali_axioms::SaturationLimits::default()
            },
            threads: denali_bench::bench_threads(),
            ..Options::default()
        });
        let t = Instant::now();
        match denali.compile_source(programs::BYTESWAP4) {
            Ok(result) => {
                let c = &result.gmas[0];
                println!(
                    "    measured: structural growth {growth:5}: {} cycles, {} instrs, e-graph {} nodes, {:?}",
                    c.cycles,
                    c.program.len(),
                    c.matcher.nodes,
                    t.elapsed()
                );
            }
            Err(e) => println!("    measured: structural growth {growth:5}: FAILED ({e})"),
        }
    }
    for (name, machine) in [
        ("ev6 (clustered)", Machine::ev6()),
        ("ev6-unclustered", Machine::ev6_unclustered()),
        ("single-issue", Machine::single_issue()),
    ] {
        let denali = Denali::new(Options {
            machine,
            threads: denali_bench::bench_threads(),
            ..Options::default()
        });
        let result = denali
            .compile_source(programs::BYTESWAP4)
            .expect("compiles");
        let c = &result.gmas[0];
        println!(
            "    measured: {name:18}: {} cycles, {} instructions",
            c.cycles,
            c.program.len()
        );
    }
    println!();
}

/// R1: retargeting (the paper's in-progress Itanium port: "the changes
/// will mostly be to the axioms").
fn r1_retargeting() {
    header(
        "R1",
        "retargeting to an Itanium-flavored machine (paper §1.1)",
        "porting requires a new machine description and (mostly) new axioms",
    );
    for (name, machine) in [("ev6", Machine::ev6()), ("ia64like", Machine::ia64like())] {
        let denali = Denali::new(Options {
            machine,
            threads: denali_bench::bench_threads(),
            ..Options::default()
        });
        for (label, src) in [
            (
                "figure2 (a*4+b)",
                r"(\procdecl f ((a long) (b long)) long (:= (\res (+ (* a 4) b))))",
            ),
            ("byteswap4", programs::BYTESWAP4),
            ("lcp2", programs::LCP2),
        ] {
            let result = denali.compile_source(src).expect("compiles");
            let c = &result.gmas[0];
            let ops: Vec<&str> = c.program.instrs.iter().map(|i| i.op.as_str()).collect();
            println!(
                "    measured: {name:8} {label:16}: {} cycles, {:2} instrs  ops={ops:?}",
                c.cycles,
                c.program.len()
            );
        }
    }
    println!();
}

fn indent(text: &str, by: usize) -> String {
    let pad = " ".repeat(by);
    text.lines()
        .map(|l| format!("{pad}{l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
