#![warn(missing_docs)]

//! Shared fixtures and helpers for the Denali benchmark harness.
//!
//! Each experiment from the paper's evaluation (see `EXPERIMENTS.md`)
//! has its program source here, plus helpers to run the pipeline,
//! validate results against the reference semantics, and produce the
//! paper-versus-measured rows the `report` binary prints.

pub mod harness;

pub mod programs {
    //! The test programs of the paper's §8 (adapted to this
    //! reproduction's concrete syntax).

    /// Figure 2's walkthrough term as a one-line procedure.
    pub const FIGURE2: &str = "(\\procdecl f ((reg6 long)) long (:= (\\res (+ (* reg6 4) 1))))";

    /// Figure 3: the 4-byte swap challenge problem.
    pub const BYTESWAP4: &str = "
(\\procdecl byteswap4 ((a long)) long
  (\\var (r long 0)
    (\\semi
      (:= ((\\selectb r 0) (\\selectb a 3)))
      (:= ((\\selectb r 1) (\\selectb a 2)))
      (:= ((\\selectb r 2) (\\selectb a 1)))
      (:= ((\\selectb r 3) (\\selectb a 0)))
      (:= (\\res r)))))";

    /// The 5-byte swap (Denali beats the C compiler by one cycle, §8).
    pub const BYTESWAP5: &str = "
(\\procdecl byteswap5 ((a long)) long
  (\\var (r long 0)
    (\\semi
      (:= ((\\selectb r 0) (\\selectb a 4)))
      (:= ((\\selectb r 1) (\\selectb a 3)))
      (:= ((\\selectb r 2) (\\selectb a 2)))
      (:= ((\\selectb r 3) (\\selectb a 1)))
      (:= ((\\selectb r 4) (\\selectb a 0)))
      (:= (\\res r)))))";

    /// Figure 6: the packet-checksum routine — 4x-unrolled,
    /// software-pipelined by hand with the `v1..v4` temporaries, using
    /// the program-specific `add`/`carry` axioms.
    pub const CHECKSUM: &str = r"
(\opdecl carry (long long) long)
(\axiom (forall (a b) (pats (carry a b))
  (eq (carry a b) (\cmpult (\add64 a b) a))))
(\axiom (forall (a b) (pats (carry a b))
  (eq (carry a b) (\cmpult (\add64 a b) b))))
(\opdecl add (long long) long)
(\axiom (forall (a b) (pats (add a b)) (eq (add a b) (add b a))))
(\axiom (forall (a b)
  (pats (add a b))
  (eq (add a b) (\add64 (\add64 a b) (carry a b)))))
(\procdecl checksum ((ptr long*) (ptrend long*)) short
  (\var (sum1 long 0) (\var (sum2 long 0)
  (\var (sum3 long 0) (\var (sum4 long 0)
  (\var (v1 long (\deref ptr))
  (\var (v2 long (\deref (+ ptr 8)))
  (\var (v3 long (\deref (+ ptr 16)))
  (\var (v4 long (\deref (+ ptr 24)))
  (\semi
    (\do (-> (<u ptr ptrend)
      (\semi
        (:= (sum1 (add sum1 v1)) (sum2 (add sum2 v2))
            (sum3 (add sum3 v3)) (sum4 (add sum4 v4)))
        (:= (ptr (+ ptr 32)))
        (:= (v1 (\deref ptr)))
        (:= (v2 (\deref (+ ptr 8))))
        (:= (v3 (\deref (+ ptr 16))))
        (:= (v4 (\deref (+ ptr 24)))))))
    (\var (s1 long) (\var (s2 long) (\var (s long)
    (\semi
      (:= (s1 (add sum1 sum2)))
      (:= (s2 (add sum3 sum4)))
      (:= (s (add s1 s2)))
      (:= (s (+ (+ (\extwl s 0) (\extwl s 2)) (+ (\extwl s 4) (\extwl s 6)))))
      (:= (s (+ (\extwl s 0) (\extwl s 2))))
      (:= (\res (\cast s short)))))))))))))))))";

    /// The checksum with four accumulators but NO hand pipelining — the
    /// input a programmer would naturally write. Compile with
    /// `Options { pipeline_loads: true, .. }` to let the mechanized
    /// Figure 6 transformation recover the hand-pipelined schedule.
    pub const CHECKSUM_AUTO: &str = r"
(\opdecl carry (long long) long)
(\axiom (forall (a b) (pats (carry a b))
  (eq (carry a b) (\cmpult (\add64 a b) a))))
(\axiom (forall (a b) (pats (carry a b))
  (eq (carry a b) (\cmpult (\add64 a b) b))))
(\opdecl add (long long) long)
(\axiom (forall (a b) (pats (add a b)) (eq (add a b) (add b a))))
(\axiom (forall (a b)
  (pats (add a b))
  (eq (add a b) (\add64 (\add64 a b) (carry a b)))))
(\procdecl checksum_auto ((ptr long*) (ptrend long*)) long
  (\var (sum1 long 0) (\var (sum2 long 0)
  (\var (sum3 long 0) (\var (sum4 long 0)
  (\do (-> (<u ptr ptrend)
    (\semi
      (:= (sum1 (add sum1 (\deref ptr)))
          (sum2 (add sum2 (\deref (+ ptr 8))))
          (sum3 (add sum3 (\deref (+ ptr 16))))
          (sum4 (add sum4 (\deref (+ ptr 24)))))
      (:= (ptr (+ ptr 32)))))))))))";

    /// A serial (not unrolled, not pipelined) checksum loop body, for
    /// the E7 comparison: what the inner loop costs without the paper's
    /// three techniques.
    pub const CHECKSUM_SERIAL: &str = r"
(\opdecl carry (long long) long)
(\axiom (forall (a b) (pats (carry a b))
  (eq (carry a b) (\cmpult (\add64 a b) a))))
(\opdecl add (long long) long)
(\axiom (forall (a b)
  (pats (add a b))
  (eq (add a b) (\add64 (\add64 a b) (carry a b)))))
(\procdecl checksum_serial ((ptr long*) (ptrend long*)) long
  (\var (sum long 0)
    (\do (-> (<u ptr ptrend)
      (\semi
        (:= (sum (add sum (\deref ptr))))
        (:= (ptr (+ ptr 8))))))))";

    /// The `rowop` matrix routine mentioned in §8: one element of
    /// `row_p += c * row_q` per iteration.
    pub const ROWOP: &str = "
(\\procdecl rowop ((p long*) (q long*) (r long*) (c long)) long
  (\\do (-> (<u p r)
    (\\semi
      (:= ((\\deref p) (+ (\\deref p) (* c (\\deref q)))))
      (:= (p (+ p 8)) (q (+ q 8)))))))";

    /// Halfword swap: exchange the two 16-bit fields of a 32-bit value
    /// (a natural sibling of the byte-swap problems, exercising the
    /// inswl/mskwl/extwl field algebra).
    pub const WORDSWAP32: &str = "
(\\procdecl wordswap32 ((a long)) long
  (:= (\\res (\\storew (\\storew 0 0 (\\selectw a 1)) 1 (\\selectw a 0)))))";

    /// The least common power of two of two registers (§8): the largest
    /// power of two dividing both, i.e. the lowest set bit of `a | b`.
    pub const LCP2: &str = "
(\\procdecl lcp2 ((a long) (b long)) long
  (\\var (u long (| a b))
    (:= (\\res (& u (- 0 u))))))";
}

use std::collections::HashMap;

use denali_arch::Simulator;
use denali_core::{CompileResult, CompiledGma, Denali, Options};
use denali_term::value::Env;
use denali_term::Symbol;

/// Compiles a fixture and differentially validates every GMA of it by
/// simulation against the reference semantics on the given inputs.
///
/// # Panics
///
/// Panics on any compilation, simulation, or mismatch failure — these
/// are harness invariants, not measurable outcomes.
pub fn compile_checked(
    denali: &Denali,
    source: &str,
    input_values: &[(&str, u64)],
    memory: &HashMap<u64, u64>,
) -> CompileResult {
    let result = denali.compile_source(source).expect("fixture compiles");
    for compiled in &result.gmas {
        check_compiled(denali, compiled, input_values, memory);
    }
    result
}

/// Differentially validates one compiled GMA on one input valuation.
///
/// # Panics
///
/// Panics on simulation failure or output mismatch.
pub fn check_compiled(
    denali: &Denali,
    compiled: &CompiledGma,
    input_values: &[(&str, u64)],
    memory: &HashMap<u64, u64>,
) {
    let program = &compiled.program;
    let mut env = Env::new();
    // Loop-carried variables and other inputs the caller did not name
    // get deterministic pseudo-random values derived from their names.
    let mut all_inputs: Vec<(String, u64)> = Vec::new();
    for input in compiled.gma.inputs() {
        let name = input.as_str();
        let value = input_values
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| {
                name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
                    (h ^ u64::from(b)).wrapping_mul(0x100000001b3)
                })
            });
        all_inputs.push((name.to_owned(), value));
    }
    for (name, value) in &all_inputs {
        env.set_word(name.as_str(), *value);
    }
    env.set_mem("M", memory.clone());
    // Program-specific ops used by the fixtures.
    env.define_op("add", |a| {
        let s = a[0].wrapping_add(a[1]);
        s.wrapping_add(u64::from(s < a[0]))
    });
    env.define_op("carry", |a| u64::from(a[0].wrapping_add(a[1]) < a[0]));
    let expected = compiled.gma.evaluate(&env).expect("reference evaluates");

    let sim = Simulator::new(&denali.options().machine);
    let needed: Vec<(&str, u64)> = all_inputs
        .iter()
        .map(|(n, v)| (n.as_str(), *v))
        .filter(|(name, _)| program.input_reg(Symbol::intern(name)).is_some())
        .collect();
    let outcome = sim
        .run_named(program, &needed, memory.clone())
        .expect("program simulates");
    for (name, want) in &expected.assigns {
        let reg = program
            .output_reg(*name)
            .unwrap_or_else(|| panic!("no output register for {name}"));
        assert_eq!(
            outcome.regs[&reg],
            *want,
            "{}: output {name} mismatch\n{}",
            compiled.gma.name,
            program.listing(4)
        );
    }
    if let Some(guard) = expected.guard {
        let reg = program
            .output_reg(Symbol::intern("guard"))
            .expect("guard register");
        assert_eq!(outcome.regs[&reg], guard, "guard mismatch");
    }
    if let Some(mem) = &expected.memory {
        for (addr, want) in mem {
            assert_eq!(
                outcome.memory.get(addr).copied().unwrap_or(0),
                *want,
                "memory[{addr:#x}] mismatch\n{}",
                program.listing(4)
            );
        }
    }
}

/// Worker-thread count for benches and the report binary: the
/// `DENALI_THREADS` environment variable (`0` = all CPUs), defaulting
/// to the serial pipeline. Results are identical at every setting.
pub fn bench_threads() -> usize {
    std::env::var("DENALI_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Default pipeline used by benches and the report binary. Honors
/// [`bench_threads`].
pub fn default_denali() -> Denali {
    Denali::new(Options {
        threads: bench_threads(),
        ..Options::default()
    })
}
