//! A minimal, dependency-free benchmarking harness.
//!
//! The repository must build fully offline, so the experiment binaries
//! cannot depend on crates.io. This module provides the
//! Criterion-shaped subset of an API the `benches/` targets need:
//! named benchmark functions, parameterized groups, and a per-iteration
//! timer with warmup. Results are printed as one line per benchmark
//! (samples, min / median / mean wall-clock).
//!
//! Knobs (environment variables):
//!
//! - `DENALI_BENCH_SAMPLES` — target number of timed iterations
//!   (default 20; groups may lower it via [`BenchmarkGroup::sample_size`]).
//! - `DENALI_BENCH_TIME_SECS` — wall-clock budget per benchmark
//!   (default 5; stops sampling early once exceeded).

use std::fmt::Display;
use std::time::{Duration, Instant};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Top-level driver: owns the default sampling configuration.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion::new()
    }
}

impl Criterion {
    /// Creates a driver with defaults (overridable by environment).
    pub fn new() -> Criterion {
        Criterion {
            sample_size: env_u64("DENALI_BENCH_SAMPLES", 20) as usize,
            measurement_time: Duration::from_secs(env_u64("DENALI_BENCH_TIME_SECS", 5)),
        }
    }

    /// Runs one named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Criterion {
        run_benchmark(name, self.sample_size, self.measurement_time, f);
        self
    }

    /// Starts a named group with its own sampling configuration.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            prefix: name.to_owned(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        }
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup {
    prefix: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    /// Sets the target number of timed iterations for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut BenchmarkGroup {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the wall-clock budget per benchmark in this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut BenchmarkGroup {
        self.measurement_time = t;
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut BenchmarkGroup {
        let id: BenchmarkId = id.into();
        let name = format!("{}/{}", self.prefix, id.0);
        run_benchmark(&name, self.sample_size, self.measurement_time, f);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut BenchmarkGroup {
        let name = format!("{}/{}", self.prefix, id.0);
        run_benchmark(&name, self.sample_size, self.measurement_time, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (provided for API symmetry; nothing buffered).
    pub fn finish(&mut self) {}
}

/// A benchmark name of the form `function/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new(function: &str, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId(name.to_owned())
    }
}

/// Hands the routine under test to the timer.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` repeatedly: one untimed warmup call, then up to
    /// the configured number of samples (stopping early when the
    /// wall-clock budget runs out, but always taking at least one).
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        std::hint::black_box(routine());
        let started = Instant::now();
        while self.times.len() < self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.times.push(t0.elapsed());
            if started.elapsed() >= self.measurement_time {
                break;
            }
        }
    }
}

fn run_benchmark(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        sample_size,
        measurement_time,
        times: Vec::new(),
    };
    f(&mut bencher);
    let mut times = bencher.times;
    if times.is_empty() {
        println!("{name:<44} (no samples)");
        return;
    }
    times.sort();
    let min = times[0];
    let median = times[times.len() / 2];
    let total: Duration = times.iter().sum();
    let mean = total / times.len() as u32;
    println!(
        "{name:<44} samples={:<3} min={:>10} median={:>10} mean={:>10}",
        times.len(),
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_takes_at_least_one_sample() {
        let mut b = Bencher {
            sample_size: 5,
            measurement_time: Duration::ZERO,
            times: Vec::new(),
        };
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(b.times.len(), 1, "budget 0 still times one sample");
        assert_eq!(calls, 2, "warmup + one timed call");
    }

    #[test]
    fn bencher_honors_sample_size() {
        let mut b = Bencher {
            sample_size: 7,
            measurement_time: Duration::from_secs(60),
            times: Vec::new(),
        };
        b.iter(|| 1 + 1);
        assert_eq!(b.times.len(), 7);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("encode", 4).0, "encode/4");
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(12)), "12.00 s");
    }
}
