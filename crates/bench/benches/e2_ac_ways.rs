//! E2 (§5): saturating a+b+c+d+e under associativity/commutativity and
//! counting the represented ways (paper: "more than a hundred").

use denali_axioms::{math_axioms, saturate, SaturationLimits};
use denali_bench::harness::Criterion;
use denali_egraph::EGraph;
use denali_term::{sexpr, Term};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let term = Term::from_sexpr(
        &sexpr::parse_one("(add64 a (add64 b (add64 c (add64 d e))))").unwrap(),
        &[],
    )
    .unwrap();
    let axioms = math_axioms();
    let limits = SaturationLimits {
        max_iterations: 24,
        ..SaturationLimits::default()
    };
    c.bench_function("e2/ac_saturation_5_terms", |b| {
        b.iter(|| {
            let mut eg = EGraph::new();
            let sum = eg.add_term(&term).unwrap();
            saturate(&mut eg, &axioms, &limits).unwrap();
            let ways = eg.count_ways(sum, 8);
            assert!(ways > 100);
            black_box(ways)
        })
    });
}

fn main() {
    bench(&mut Criterion::new());
}
