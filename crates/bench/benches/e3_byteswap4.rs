//! E3 (§8, Figure 4): the full byteswap4 pipeline — the paper's
//! "just over a minute" experiment.

use denali_bench::harness::Criterion;
use denali_bench::{default_denali, programs};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(40));
    group.bench_function("byteswap4_pipeline", |b| {
        let denali = default_denali();
        b.iter(|| {
            let result = denali.compile_source(programs::BYTESWAP4).unwrap();
            assert_eq!(result.gmas[0].cycles, 5);
            black_box(result.gmas[0].program.len())
        })
    });
    group.finish();
}

fn main() {
    bench(&mut Criterion::new());
}
