//! E8 (§8): the additional tests — rowop and least common power of 2 —
//! plus ablations: solver substitution (CDCL vs DPLL) and machine-model
//! variants (unclustered, single-issue).

use denali_arch::Machine;
use denali_bench::harness::Criterion;
use denali_bench::{default_denali, programs};
use denali_core::{Denali, Options, SolverChoice};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    c.bench_function("e8/rowop_pipeline", |b| {
        let denali = default_denali();
        b.iter(|| {
            let result = denali.compile_source(programs::ROWOP).unwrap();
            black_box(result.main().cycles)
        })
    });
    c.bench_function("e8/lcp2_cdcl", |b| {
        let denali = default_denali();
        b.iter(|| black_box(denali.compile_source(programs::LCP2).unwrap().gmas[0].cycles))
    });
    c.bench_function("e8/lcp2_dpll", |b| {
        let denali = Denali::new(Options {
            solver: SolverChoice::Dpll,
            ..Options::default()
        });
        b.iter(|| black_box(denali.compile_source(programs::LCP2).unwrap().gmas[0].cycles))
    });
    c.bench_function("e8/lcp2_unclustered", |b| {
        let denali = Denali::new(Options {
            machine: Machine::ev6_unclustered(),
            ..Options::default()
        });
        b.iter(|| black_box(denali.compile_source(programs::LCP2).unwrap().gmas[0].cycles))
    });
    c.bench_function("e8/lcp2_single_issue", |b| {
        let denali = Denali::new(Options {
            machine: Machine::single_issue(),
            ..Options::default()
        });
        b.iter(|| black_box(denali.compile_source(programs::LCP2).unwrap().gmas[0].cycles))
    });
}

fn main() {
    bench(&mut Criterion::new());
}
