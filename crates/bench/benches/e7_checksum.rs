//! E7 (§8, Figures 5-6): the checksum pipeline — the paper's largest
//! challenge problem (10 cycles / 31 instructions in ~4 hours there).

use denali_bench::harness::Criterion;
use denali_bench::{default_denali, programs};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(30));
    group.bench_function("checksum_pipeline", |b| {
        let denali = default_denali();
        b.iter(|| {
            let result = denali.compile_source(programs::CHECKSUM).unwrap();
            let body = result
                .gmas
                .iter()
                .find(|g| g.gma.name.contains("loop"))
                .unwrap();
            black_box((body.cycles, body.program.len()))
        })
    });
    group.bench_function("checksum_serial_pipeline", |b| {
        let denali = default_denali();
        b.iter(|| {
            let result = denali.compile_source(programs::CHECKSUM_SERIAL).unwrap();
            black_box(result.gmas.len())
        })
    });
    group.finish();
}

fn main() {
    bench(&mut Criterion::new());
}
