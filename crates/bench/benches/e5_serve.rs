//! E5s: the serving layer — a cold-cache miss (full pipeline), a warm
//! cache hit (replayed bytes), and a degraded-deadline fallback
//! (baseline rewriter), all through [`Server::handle_line`] — the same
//! code path the stdio/TCP transports use, minus the admission pool.

use denali_bench::harness::Criterion;
use denali_bench::{bench_threads, programs};
use denali_core::Options;
use denali_serve::{Server, ServerConfig};
use denali_trace::json;
use std::hint::black_box;

fn config() -> ServerConfig {
    ServerConfig {
        base: Options {
            threads: bench_threads(),
            ..Options::default()
        },
        ..ServerConfig::default()
    }
}

fn compile_line(source: &str, extra: &str) -> String {
    let mut src = String::new();
    json::write_str(&mut src, source);
    format!(r#"{{"type":"compile","id":"bench","source":{src}{extra}}}"#)
}

fn bench(c: &mut Criterion) {
    let line = compile_line(programs::FIGURE2, "");

    // Cold: a fresh server (empty cache) per iteration pays the full
    // parse / lower / saturate / search pipeline.
    c.bench_function("e5s/cold", |b| {
        b.iter(|| {
            let server = Server::new(config()).unwrap();
            black_box(server.handle_line(&line).unwrap())
        })
    });

    // Warm: one server, prewarmed once; every iteration replays the
    // cached response bytes.
    let server = Server::new(config()).unwrap();
    let cold = server.handle_line(&line).unwrap();
    c.bench_function("e5s/warm", |b| {
        b.iter(|| black_box(server.handle_line(&line).unwrap()))
    });
    assert_eq!(
        cold,
        server.handle_line(&line).unwrap(),
        "warm hit must replay the cold bytes"
    );

    // Degraded: an already-expired deadline, on a separate server so
    // the warm cache cannot answer first. Degraded results are never
    // cached, so every iteration runs the baseline fallback.
    let fallback = Server::new(config()).unwrap();
    let late = compile_line(programs::FIGURE2, r#","deadline_ms":0"#);
    c.bench_function("e5s/degraded", |b| {
        b.iter(|| black_box(fallback.handle_line(&late).unwrap()))
    });
}

fn main() {
    bench(&mut Criterion::new());
}
