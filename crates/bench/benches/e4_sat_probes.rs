//! E4 (§8): SAT problem generation and solving per cycle budget for
//! byteswap4 (the paper reports 1639/4613 at K=4 through 9203/26415 at
//! K=8; we report our encoding's sizes alongside solve times).

use denali_arch::Machine;
use denali_axioms::SaturationLimits;
use denali_bench::harness::{BenchmarkId, Criterion};
use denali_core::encode::{encode, EncodeOptions};
use denali_core::machine_terms::enumerate;
use denali_core::matcher::match_gma;
use denali_lang::{lower_proc, parse_program};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let program = parse_program(denali_bench::programs::BYTESWAP4).unwrap();
    let gma = lower_proc(&program.procs[0]).unwrap().remove(0);
    let matched = match_gma(
        &gma,
        &denali_axioms::standard_axioms(),
        &SaturationLimits::default(),
    )
    .unwrap();
    let machine = Machine::ev6();
    let cands = enumerate(&matched, &machine, &gma.inputs(), None).unwrap();

    let mut group = c.benchmark_group("e4");
    for k in [4u32, 5, 6, 8] {
        group.bench_with_input(BenchmarkId::new("encode_and_solve", k), &k, |b, &k| {
            b.iter(|| {
                let enc = encode(&matched, &cands, &machine, k, &EncodeOptions::default());
                let mut solver = enc.cnf.to_solver();
                black_box(solver.solve())
            })
        });
    }
    group.finish();
}

fn main() {
    bench(&mut Criterion::new());
}
