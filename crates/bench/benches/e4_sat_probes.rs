//! E4 (§8): SAT problem generation and solving per cycle budget for
//! byteswap4 (the paper reports 1639/4613 at K=4 through 9203/26415 at
//! K=8; we report our encoding's sizes alongside solve times), plus the
//! search's full probe ladder with fresh per-probe solvers versus one
//! persistent solver probed under assumptions.

use denali_arch::Machine;
use denali_axioms::SaturationLimits;
use denali_bench::harness::{BenchmarkId, Criterion};
use denali_core::encode::{encode, EncodeOptions, IncrementalEncoding};
use denali_core::machine_terms::enumerate;
use denali_core::matcher::match_gma;
use denali_lang::{lower_proc, parse_program};
use std::hint::black_box;

/// The serial search's probe order for byteswap4: doubling ascent to
/// the first SAT budget, then the downward walk to the optimum.
const PROBE_LADDER: [u32; 6] = [1, 2, 4, 8, 6, 5];

fn bench(c: &mut Criterion) {
    let program = parse_program(denali_bench::programs::BYTESWAP4).unwrap();
    let gma = lower_proc(&program.procs[0]).unwrap().remove(0);
    let matched = match_gma(
        &gma,
        &denali_axioms::standard_axioms(),
        &SaturationLimits::default(),
    )
    .unwrap();
    let machine = Machine::ev6();
    let cands = enumerate(&matched, &machine, &gma.inputs(), None).unwrap();

    let mut group = c.benchmark_group("e4");
    for k in [4u32, 5, 6, 8] {
        group.bench_with_input(BenchmarkId::new("encode_and_solve", k), &k, |b, &k| {
            b.iter(|| {
                let enc = encode(&matched, &cands, &machine, k, &EncodeOptions::default());
                let mut solver = enc.cnf.to_solver();
                black_box(solver.solve())
            })
        });
    }

    // The whole search ladder, both probing strategies.
    group.bench_function("probe_ladder_fresh", |b| {
        b.iter(|| {
            for k in PROBE_LADDER {
                let enc = encode(&matched, &cands, &machine, k, &EncodeOptions::default());
                let mut solver = enc.cnf.to_solver();
                black_box(solver.solve());
            }
        })
    });
    group.bench_function("probe_ladder_incremental", |b| {
        b.iter(|| {
            let mut inc =
                IncrementalEncoding::new(&matched, &cands, &machine, &EncodeOptions::default());
            for k in PROBE_LADDER {
                black_box(inc.probe(k).satisfiable);
            }
        })
    });
    group.finish();
}

fn main() {
    bench(&mut Criterion::new());
}
