//! E6 (§8): brute-force enumeration cost versus sequence length (the
//! GNU-superoptimizer comparison: fine at 5 instructions, days beyond).

use denali_baseline::{brute_search, BruteConfig};
use denali_bench::harness::{BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

type Target = (usize, fn(&[u64]) -> u64);

fn bench(c: &mut Criterion) {
    // Targets whose optimal length is 1, 2, 3 — the exponential growth
    // in search cost is the measured series.
    let targets: Vec<Target> = vec![
        (1, |i| i[0].wrapping_add(i[0])),
        (2, |i| (i[0] & 0xff) << 8),
        (3, |i| ((i[0] & 0xff) << 24) | ((i[0] >> 24) & 0xff)),
    ];
    let mut group = c.benchmark_group("e6");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(20));
    for (len, target) in targets {
        group.bench_with_input(BenchmarkId::new("brute_len", len), &len, |b, &len| {
            let config = BruteConfig {
                max_len: len,
                verify: 100,
                timeout: Duration::from_secs(300),
                ..BruteConfig::default()
            };
            b.iter(|| {
                let (found, stats) = brute_search(&target, 1, &config);
                assert!(found.is_some());
                black_box(stats.sequences_tested)
            })
        });
    }
    group.finish();
}

fn main() {
    bench(&mut Criterion::new());
}
