//! A1 ablations: sensitivity of the pipeline to this reproduction's two
//! main design knobs — the matcher's structural budget and the cluster
//! model. (Not an experiment from the paper; documents our substitutions.)

use denali_arch::Machine;
use denali_axioms::SaturationLimits;
use denali_bench::harness::{BenchmarkId, Criterion};
use denali_bench::programs;
use denali_core::{Denali, Options};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(20));
    // Structural budget: quality is flat (5 cycles at every setting);
    // matcher cost is the measured variable.
    for growth in [500usize, 1000, 2000] {
        group.bench_with_input(
            BenchmarkId::new("byteswap4_structural_growth", growth),
            &growth,
            |b, &growth| {
                let denali = Denali::new(Options {
                    saturation: SaturationLimits {
                        max_structural_growth: growth,
                        ..SaturationLimits::default()
                    },
                    ..Options::default()
                });
                b.iter(|| {
                    let result = denali.compile_source(programs::BYTESWAP4).unwrap();
                    assert_eq!(result.gmas[0].cycles, 5);
                    black_box(result.gmas[0].program.len())
                })
            },
        );
    }
    // Cluster model on the fast fixture.
    for (name, machine) in [
        ("clustered", Machine::ev6()),
        ("unclustered", Machine::ev6_unclustered()),
        ("single_issue", Machine::single_issue()),
    ] {
        group.bench_function(BenchmarkId::new("lcp2_machine", name), |b| {
            let denali = Denali::new(Options {
                machine: machine.clone(),
                ..Options::default()
            });
            b.iter(|| black_box(denali.compile_source(programs::LCP2).unwrap().gmas[0].cycles))
        });
    }
    group.finish();
}

fn main() {
    bench(&mut Criterion::new());
}
