//! E5 (§8): byteswap5 — Denali versus the conventional rewriting
//! compiler (the production-C-compiler stand-in).

use denali_arch::Machine;
use denali_baseline::rewrite_compile;
use denali_bench::harness::Criterion;
use denali_bench::{default_denali, programs};
use denali_lang::{lower_proc, parse_program};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(30));
    group.bench_function("byteswap5_denali", |b| {
        let denali = default_denali();
        b.iter(|| {
            let result = denali.compile_source(programs::BYTESWAP5).unwrap();
            black_box(result.gmas[0].cycles)
        })
    });
    group.bench_function("byteswap5_rewrite_baseline", |b| {
        let program = parse_program(programs::BYTESWAP5).unwrap();
        let gma = lower_proc(&program.procs[0]).unwrap().remove(0);
        let machine = Machine::ev6();
        b.iter(|| {
            let p = rewrite_compile(&gma, &machine).unwrap();
            black_box(p.cycles())
        })
    });
    group.finish();
}

fn main() {
    bench(&mut Criterion::new());
}
