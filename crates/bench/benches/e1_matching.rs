//! E1 (Figure 2): matching cost for the reg6*4+1 walkthrough and the
//! full single-instruction pipeline.

use denali_axioms::{alpha_axioms, math_axioms, saturate, SaturationLimits};
use denali_bench::harness::Criterion;
use denali_bench::{default_denali, programs};
use denali_egraph::EGraph;
use denali_term::Term;
use std::hint::black_box;

fn goal_term() -> Term {
    Term::call(
        "add64",
        vec![
            Term::call("mul64", vec![Term::leaf("reg6"), Term::constant(4)]),
            Term::constant(1),
        ],
    )
}

fn bench(c: &mut Criterion) {
    let mut axioms = math_axioms();
    axioms.extend(alpha_axioms());

    c.bench_function("e1/matching_figure2", |b| {
        b.iter(|| {
            let mut eg = EGraph::new();
            let goal = eg.add_term(&goal_term()).unwrap();
            saturate(&mut eg, &axioms, &SaturationLimits::default()).unwrap();
            black_box(eg.count_ways(goal, 6))
        })
    });

    c.bench_function("e1/pipeline_figure2", |b| {
        let denali = default_denali();
        b.iter(|| {
            let result = denali.compile_source(programs::FIGURE2).unwrap();
            black_box(result.gmas[0].cycles)
        })
    });
}

fn main() {
    bench(&mut Criterion::new());
}
