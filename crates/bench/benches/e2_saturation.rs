//! E2b: full versus delta-driven saturation on the AC workhorse
//! (a+b+c+d+e) — the round structure is identical, but delta rounds
//! restrict the top-level candidate scan to the dirty cone.

use denali_axioms::{math_axioms, saturate, SaturationLimits};
use denali_bench::harness::Criterion;
use denali_egraph::EGraph;
use denali_term::{sexpr, Term};
use std::hint::black_box;

fn goal_term() -> Term {
    Term::from_sexpr(
        &sexpr::parse_one("(add64 a (add64 b (add64 c (add64 d e))))").unwrap(),
        &[],
    )
    .unwrap()
}

fn limits(delta: bool) -> SaturationLimits {
    SaturationLimits {
        max_iterations: 24,
        delta_match: delta,
        ..SaturationLimits::default()
    }
}

fn bench(c: &mut Criterion) {
    let axioms = math_axioms();
    let term = goal_term();
    for delta in [false, true] {
        let name = if delta {
            "e2/saturation_delta"
        } else {
            "e2/saturation_full"
        };
        c.bench_function(name, |b| {
            b.iter(|| {
                let mut eg = EGraph::new();
                eg.add_term(&term).unwrap();
                let report = saturate(&mut eg, &axioms, &limits(delta)).unwrap();
                black_box(report.instances)
            })
        });
    }
}

fn main() {
    bench(&mut Criterion::new());
}
