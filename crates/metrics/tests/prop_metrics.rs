//! Property tests for the histogram substrate: the determinism and
//! algebra claims the metrics layer makes (`DENALI_PROP_SEED` replays
//! a failing case; see `denali-prng`).

use denali_metrics::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot, RESOLUTION};
use denali_prng::{forall, Rng};

/// Draws a value spread across the full dynamic range (uniform draws
/// alone would almost never exercise the small exact buckets).
fn arbitrary_value(rng: &mut Rng) -> u64 {
    let bits = rng.below(64) as u32;
    if bits == 0 {
        0
    } else {
        rng.below(1u64 << (bits - 1)) * 2 + rng.below(2)
    }
}

#[test]
fn bucket_index_is_monotone_and_bounds_invert_it() {
    forall("metrics.bucket_roundtrip", 2000, |rng| {
        let v = arbitrary_value(rng);
        let i = bucket_index(v);
        let (lo, hi) = bucket_bounds(i);
        assert!(lo <= v && v <= hi, "{v} outside its bucket [{lo}, {hi}]");
        let w = arbitrary_value(rng);
        if v <= w {
            assert!(
                bucket_index(v) <= bucket_index(w),
                "index order for {v} <= {w}"
            );
        }
    });
}

#[test]
fn histograms_are_insertion_order_independent() {
    forall("metrics.order_independence", 200, |rng| {
        let n = rng.below_usize(64) + 1;
        let mut values: Vec<u64> = (0..n).map(|_| arbitrary_value(rng)).collect();
        let a = Histogram::new();
        for &v in &values {
            a.observe(v);
        }
        // Shuffle (Fisher–Yates on the same rng) and re-insert.
        for i in (1..values.len()).rev() {
            values.swap(i, rng.below_usize(i + 1));
        }
        let b = Histogram::new();
        for &v in &values {
            b.observe(v);
        }
        assert_eq!(a.snapshot(), b.snapshot(), "insert order changed a bucket");
    });
}

#[test]
fn concurrent_recording_matches_serial() {
    forall("metrics.thread_determinism", 20, |rng| {
        let n = rng.below_usize(400) + 4;
        let values: Vec<u64> = (0..n).map(|_| arbitrary_value(rng)).collect();
        let serial = Histogram::new();
        for &v in &values {
            serial.observe(v);
        }
        let shared = std::sync::Arc::new(Histogram::new());
        std::thread::scope(|scope| {
            for chunk in values.chunks(values.len().div_ceil(4)) {
                let shared = std::sync::Arc::clone(&shared);
                scope.spawn(move || {
                    for &v in chunk {
                        shared.observe(v);
                    }
                });
            }
        });
        assert_eq!(
            serial.snapshot(),
            shared.snapshot(),
            "threaded recording diverged from serial"
        );
    });
}

#[test]
fn merge_is_associative_and_commutative() {
    forall("metrics.merge_algebra", 200, |rng| {
        let mut snap = || {
            let h = Histogram::new();
            for _ in 0..rng.below(32) {
                h.observe(arbitrary_value(rng));
            }
            h.snapshot()
        };
        let (a, b, c) = (snap(), snap(), snap());
        assert_eq!(a.merge(&b), b.merge(&a), "merge must commute");
        assert_eq!(
            a.merge(&b).merge(&c),
            a.merge(&b.merge(&c)),
            "merge must associate"
        );
        assert_eq!(
            a.merge(&HistogramSnapshot::empty()),
            a,
            "empty must be the merge identity"
        );
        assert_eq!(a.merge(&b).count(), a.count() + b.count());
    });
}

#[test]
fn quantiles_are_monotone_and_within_resolution() {
    forall("metrics.quantile_bounds", 200, |rng| {
        let n = rng.below_usize(100) + 1;
        let mut values: Vec<u64> = (0..n).map(|_| arbitrary_value(rng)).collect();
        let h = Histogram::new();
        for &v in &values {
            h.observe(v);
        }
        values.sort_unstable();
        let s = h.snapshot();
        let mut last = 0;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let got = s.quantile(q);
            assert!(got >= last, "quantile({q}) regressed: {got} < {last}");
            last = got;
            // The readout brackets the exact nearest-rank value from
            // above, within one bucket's width.
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let exact = values[rank - 1];
            assert!(got >= exact, "quantile({q}) = {got} below exact {exact}");
            let slack = (exact as f64 * RESOLUTION).ceil() as u64 + 1;
            assert!(
                got <= exact.saturating_add(slack),
                "quantile({q}) = {got} exceeds exact {exact} by more than {slack}"
            );
        }
        assert!(s.quantile(1.0) >= s.max, "p100 covers the max");
    });
}
