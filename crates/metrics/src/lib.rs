#![warn(missing_docs)]

//! Zero-dependency metrics for the Denali pipeline and server.
//!
//! Denali's product claim is latency under a budget, so its latency
//! distribution is a first-class output, not a side channel. This crate
//! is the substrate every layer reports through:
//!
//! * **Lock-free primitives** — [`Counter`] and [`Gauge`] are relaxed
//!   atomics; [`Histogram`] is a log-linear (HDR-style) bucket vector
//!   with relaxed-atomic increments, an exact tracked maximum, and
//!   deterministic bucket-boundary quantile readout. Histogram
//!   snapshots [`merge`](HistogramSnapshot::merge) associatively and
//!   commutatively — the aggregation property sharded serving needs.
//! * **A registry** — [`Registry`] names families (with label sets)
//!   and renders them in the Prometheus text exposition format, always
//!   in one deterministic order. [`global`] is the process-wide
//!   registry the core pipeline records into; scopes that must not
//!   share state (one server per test process) build their own.
//! * **Exposure** — [`serve_exposition`] answers `GET /metrics` over a
//!   minimal in-repo HTTP/1.0 responder, and [`validate_exposition`]
//!   checks the format contract offline (CI has no Prometheus binary
//!   to parse the output with).
//!
//! Recording is always on and costs nanoseconds per event (no locks,
//! no allocation); determinism tests elsewhere in the workspace pin
//! that enabling none/all of the exposure paths never changes compiler
//! output.

mod expo;
mod histogram;
mod http;
mod registry;

pub use expo::validate_exposition;
pub use histogram::{
    bucket_bounds, bucket_index, Histogram, HistogramSnapshot, BUCKETS, RESOLUTION, SUB_BITS,
};
pub use http::serve_exposition;
pub use registry::{global, Counter, Gauge, Registry};
