//! Prometheus text exposition (format 0.0.4): the renderer the
//! registry uses and a grammar validator for CI.
//!
//! CI runs offline — there is no Prometheus binary to scrape the
//! endpoint and confirm it parses — so [`validate_exposition`] encodes
//! the subset of the format contract this crate relies on:
//!
//! * every line is a `# HELP`/`# TYPE` comment or a well-formed sample
//!   (`name{label="value",…} value`);
//! * a family's `TYPE` appears once, before any of its samples;
//! * no duplicate samples (same name and label set);
//! * counter samples are finite and non-negative;
//! * histogram families expose `_bucket`/`_sum`/`_count` samples whose
//!   `le` bounds strictly increase, whose cumulative counts never
//!   decrease, and whose `+Inf` bucket equals `_count`.
//!
//! Histograms render their native `u64` unit (microseconds by
//! convention, with a `_us` name suffix) as integer `le` bounds —
//! exact, locale-free, and deterministic. Only non-empty buckets plus
//! the mandatory `+Inf` are emitted; cumulative counts make any bucket
//! subset a legal exposition.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use crate::histogram::bucket_bounds;
use crate::registry::{Family, Metric};

fn sample_name(out: &mut String, name: &str, labels: &str) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        out.push_str(labels);
        out.push('}');
    }
}

/// Renders one family (HELP, TYPE, samples) to `out`.
pub(crate) fn render_family(out: &mut String, name: &str, family: &Family) {
    if !family.help.is_empty() {
        let _ = writeln!(out, "# HELP {name} {}", family.help.replace('\n', " "));
    }
    let _ = writeln!(out, "# TYPE {name} {}", family.kind.exposition_name());
    for (labels, metric) in &family.samples {
        match metric {
            Metric::Counter(c) => {
                sample_name(out, name, labels);
                let _ = writeln!(out, " {}", c.get());
            }
            Metric::Gauge(g) => {
                sample_name(out, name, labels);
                let _ = writeln!(out, " {}", g.get());
            }
            Metric::Histogram(h) => {
                let snapshot = h.snapshot();
                let mut cumulative = 0u64;
                for (bucket, count) in snapshot.nonzero() {
                    cumulative += count;
                    out.push_str(name);
                    out.push_str("_bucket{");
                    if !labels.is_empty() {
                        out.push_str(labels);
                        out.push(',');
                    }
                    let _ = writeln!(out, "le=\"{}\"}} {cumulative}", bucket_bounds(bucket).1);
                }
                out.push_str(name);
                out.push_str("_bucket{");
                if !labels.is_empty() {
                    out.push_str(labels);
                    out.push(',');
                }
                let _ = writeln!(out, "le=\"+Inf\"}} {cumulative}");
                sample_name(out, &format!("{name}_sum"), labels);
                let _ = writeln!(out, " {}", snapshot.sum);
                sample_name(out, &format!("{name}_count"), labels);
                let _ = writeln!(out, " {cumulative}");
            }
        }
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// One parsed sample line.
struct Sample {
    name: String,
    /// Label pairs in line order.
    labels: Vec<(String, String)>,
    value: f64,
}

/// Parses `name{label="value",…} value [timestamp]`.
fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name, rest) = match line.find(['{', ' ', '\t']) {
        Some(i) => (&line[..i], &line[i..]),
        None => return Err("sample has no value".to_owned()),
    };
    if !valid_metric_name(name) {
        return Err(format!("invalid metric name {name:?}"));
    }
    let mut labels = Vec::new();
    let mut rest = rest;
    if let Some(inner) = rest.strip_prefix('{') {
        let mut chars = inner.char_indices().peekable();
        loop {
            // Label name up to '='.
            let start = match chars.peek() {
                Some(&(i, '}')) => {
                    rest = &inner[i + 1..];
                    break;
                }
                Some(&(i, _)) => i,
                None => return Err("unterminated label set".to_owned()),
            };
            let mut eq = None;
            for (i, c) in chars.by_ref() {
                if c == '=' {
                    eq = Some(i);
                    break;
                }
            }
            let Some(eq) = eq else {
                return Err("label without '='".to_owned());
            };
            let key = &inner[start..eq];
            if !valid_label_name(key) {
                return Err(format!("invalid label name {key:?}"));
            }
            match chars.next() {
                Some((_, '"')) => {}
                _ => return Err("label value must be quoted".to_owned()),
            }
            let mut value = String::new();
            let mut closed = false;
            while let Some((_, c)) = chars.next() {
                match c {
                    '"' => {
                        closed = true;
                        break;
                    }
                    '\\' => match chars.next() {
                        Some((_, '\\')) => value.push('\\'),
                        Some((_, '"')) => value.push('"'),
                        Some((_, 'n')) => value.push('\n'),
                        other => return Err(format!("bad escape {other:?} in label value")),
                    },
                    c => value.push(c),
                }
            }
            if !closed {
                return Err("unterminated label value".to_owned());
            }
            labels.push((key.to_owned(), value));
            match chars.next() {
                Some((_, ',')) => {}
                Some((i, '}')) => {
                    rest = &inner[i + 1..];
                    break;
                }
                other => return Err(format!("expected ',' or '}}' after label, got {other:?}")),
            }
        }
    }
    let mut parts = rest.split_whitespace();
    let Some(value) = parts.next() else {
        return Err("sample has no value".to_owned());
    };
    let value = match value {
        "+Inf" | "Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v
            .parse::<f64>()
            .map_err(|_| format!("bad sample value {v:?}"))?,
    };
    if let Some(ts) = parts.next() {
        ts.parse::<i64>()
            .map_err(|_| format!("bad timestamp {ts:?}"))?;
    }
    if parts.next().is_some() {
        return Err("trailing garbage after sample".to_owned());
    }
    let mut seen = BTreeSet::new();
    for (k, _) in &labels {
        if !seen.insert(k.clone()) {
            return Err(format!("duplicate label {k:?}"));
        }
    }
    Ok(Sample {
        name: name.to_owned(),
        labels,
        value,
    })
}

/// The family a sample belongs to, given the declared types: histogram
/// series samples (`_bucket`/`_sum`/`_count`) resolve to their base
/// family name.
fn family_of<'a>(name: &'a str, types: &BTreeMap<String, String>) -> Option<(&'a str, &'a str)> {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return Some((base, suffix));
            }
        }
    }
    types.get(name).map(|_| (name, ""))
}

/// Per-histogram-series accumulated evidence, keyed by the label set
/// minus `le`.
#[derive(Default)]
struct Series {
    buckets: Vec<(f64, f64)>,
    sum: Option<f64>,
    count: Option<f64>,
}

/// Validates a Prometheus text exposition (see the module docs for the
/// exact contract).
///
/// # Errors
///
/// Returns `Err` with a line-numbered message on the first violation.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut helped: BTreeSet<String> = BTreeSet::new();
    let mut sampled: BTreeSet<String> = BTreeSet::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut histograms: BTreeMap<(String, String), Series> = BTreeMap::new();
    for (idx, line) in text.lines().enumerate() {
        let at = |e: String| format!("line {}: {e}", idx + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (Some(name), Some(kind), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(at("malformed TYPE line".to_owned()));
            };
            if !valid_metric_name(name) {
                return Err(at(format!("invalid metric name {name:?}")));
            }
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(at(format!("unknown metric type {kind:?}")));
            }
            if types.insert(name.to_owned(), kind.to_owned()).is_some() {
                return Err(at(format!("duplicate TYPE for {name}")));
            }
            if sampled.contains(name) {
                return Err(at(format!("TYPE for {name} after its samples")));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let Some(name) = rest.split_whitespace().next() else {
                return Err(at("malformed HELP line".to_owned()));
            };
            if !helped.insert(name.to_owned()) {
                return Err(at(format!("duplicate HELP for {name}")));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }
        let sample = parse_sample(line).map_err(at)?;
        let Some((base, suffix)) = family_of(&sample.name, &types) else {
            return Err(at(format!("sample {} has no TYPE", sample.name)));
        };
        sampled.insert(base.to_owned());
        let key = format!("{}|{:?}", sample.name, sample.labels);
        if !seen.insert(key) {
            return Err(at(format!("duplicate sample {}", sample.name)));
        }
        let kind = types[base].clone();
        let monotone_ok = sample.value.is_finite() && sample.value >= 0.0;
        if kind == "counter" && !monotone_ok {
            return Err(at(format!(
                "counter {} has non-monotone value {}",
                sample.name, sample.value
            )));
        }
        if kind == "histogram" {
            if suffix.is_empty() {
                return Err(at(format!(
                    "histogram {base} exposes a bare sample (want _bucket/_sum/_count)"
                )));
            }
            let le = sample.labels.iter().find(|(k, _)| k == "le");
            let series_labels: Vec<&(String, String)> =
                sample.labels.iter().filter(|(k, _)| k != "le").collect();
            let series = histograms
                .entry((base.to_owned(), format!("{series_labels:?}")))
                .or_default();
            match suffix {
                "_bucket" => {
                    let Some((_, le)) = le else {
                        return Err(at(format!("{} is missing its le label", sample.name)));
                    };
                    let bound = match le.as_str() {
                        "+Inf" => f64::INFINITY,
                        v => v
                            .parse::<f64>()
                            .map_err(|_| at(format!("bad le bound {v:?}")))?,
                    };
                    series.buckets.push((bound, sample.value));
                }
                _ => {
                    if le.is_some() {
                        return Err(at(format!("{} must not carry le", sample.name)));
                    }
                    let slot = if suffix == "_sum" {
                        &mut series.sum
                    } else {
                        &mut series.count
                    };
                    *slot = Some(sample.value);
                }
            }
        }
    }
    for ((name, labels), series) in &histograms {
        let at = |e: String| format!("histogram {name}{labels}: {e}");
        let mut last_bound = f64::NEG_INFINITY;
        let mut last_cum = 0.0f64;
        for &(bound, cum) in &series.buckets {
            if bound <= last_bound {
                return Err(at(format!("le bounds not increasing at {bound}")));
            }
            if cum < last_cum {
                return Err(at(format!("cumulative count decreases at le={bound}")));
            }
            last_bound = bound;
            last_cum = cum;
        }
        match series.buckets.last() {
            Some(&(bound, cum)) if bound.is_infinite() => {
                if series.count != Some(cum) {
                    return Err(at(format!(
                        "+Inf bucket {cum} disagrees with _count {:?}",
                        series.count
                    )));
                }
            }
            _ => return Err(at("missing +Inf bucket".to_owned())),
        }
        if series.sum.is_none() {
            return Err(at("missing _sum".to_owned()));
        }
        if series.count.is_none() {
            return Err(at("missing _count".to_owned()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter_with("denali_requests_total", &[("outcome", "ok")], "requests")
            .add(3);
        r.counter_with("denali_requests_total", &[("outcome", "error")], "requests")
            .inc();
        r.gauge("denali_queue_depth", "queued jobs").set(2);
        let h = r.histogram_with(
            "denali_stage_us",
            &[("stage", "total")],
            "stage latency in microseconds",
        );
        for v in [3u64, 3, 17, 900, 40_000] {
            h.observe(v);
        }
        r.histogram("denali_empty_us", "never observed");
        r
    }

    #[test]
    fn rendered_exposition_validates() {
        let text = sample_registry().render();
        validate_exposition(&text).unwrap();
        assert!(text.contains("# TYPE denali_stage_us histogram"));
        assert!(text.contains("denali_stage_us_bucket{stage=\"total\",le=\"3\"} 2"));
        assert!(text.contains("denali_stage_us_bucket{stage=\"total\",le=\"+Inf\"} 5"));
        assert!(text.contains("denali_stage_us_count{stage=\"total\"} 5"));
        assert!(text.contains("denali_empty_us_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("denali_requests_total{outcome=\"ok\"} 3"));
    }

    #[test]
    fn validator_rejects_untyped_samples() {
        let err = validate_exposition("mystery_metric 4\n").unwrap_err();
        assert!(err.contains("no TYPE"), "{err}");
    }

    #[test]
    fn validator_rejects_type_after_samples() {
        let text = "# TYPE a counter\na 1\n# TYPE a gauge\n";
        let err = validate_exposition(text).unwrap_err();
        assert!(err.contains("duplicate TYPE"), "{err}");
        let text = "# TYPE b counter\nb_total 0\n";
        assert!(validate_exposition(text).is_err(), "b_total is untyped");
    }

    #[test]
    fn validator_rejects_duplicate_samples() {
        let text = "# TYPE a counter\na{x=\"1\"} 1\na{x=\"1\"} 2\n";
        let err = validate_exposition(text).unwrap_err();
        assert!(err.contains("duplicate sample"), "{err}");
    }

    #[test]
    fn validator_rejects_negative_counters() {
        let text = "# TYPE a counter\na -1\n";
        let err = validate_exposition(text).unwrap_err();
        assert!(err.contains("non-monotone"), "{err}");
    }

    #[test]
    fn validator_rejects_histogram_violations() {
        // Cumulative counts decrease.
        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n\
                    h_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n";
        assert!(validate_exposition(text).unwrap_err().contains("decreases"));
        // +Inf disagrees with _count.
        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 4\n";
        assert!(validate_exposition(text).unwrap_err().contains("disagrees"));
        // No +Inf bucket at all.
        let text = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 9\nh_count 5\n";
        assert!(validate_exposition(text)
            .unwrap_err()
            .contains("missing +Inf"));
    }

    #[test]
    fn validator_accepts_escaped_labels_and_timestamps() {
        let text = "# TYPE a gauge\na{msg=\"say \\\"hi\\\"\\n\\\\done\"} 4 1700000000\n";
        validate_exposition(text).unwrap();
    }

    #[test]
    fn validator_rejects_malformed_labels() {
        for bad in [
            "# TYPE a gauge\na{x=1} 4\n",
            "# TYPE a gauge\na{x=\"1\"\n",
            "# TYPE a gauge\na{x=\"1} 4\n",
            "# TYPE a gauge\na{2x=\"1\"} 4\n",
            "# TYPE a gauge\na{x=\"1\",x=\"2\"} 4\n",
        ] {
            assert!(validate_exposition(bad).is_err(), "accepted {bad:?}");
        }
    }
}
