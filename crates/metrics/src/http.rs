//! A deliberately tiny HTTP/1.0 responder for the `/metrics` endpoint.
//!
//! Scrapes are rare (seconds apart) and small (one text body), so this
//! is the smallest thing that a Prometheus scraper, `curl`, or a CI
//! `urllib` call will accept: accept a connection, read the request
//! line, drain headers, answer with `Content-Length` and
//! `Connection: close`, close. Connections are handled sequentially
//! with read/write timeouts — a stalled scraper delays the next scrape
//! by at most the timeout, and can never wedge the server (the
//! responder runs on its own thread, never on a request path).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// Per-connection read/write timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Serves `GET /metrics` (and `GET /`) forever, answering each request
/// with the text produced by `render` at scrape time. Accept errors are
/// transient (a client vanishing mid-handshake) and skipped; the loop
/// only returns if the listener itself dies.
///
/// # Errors
///
/// Never returns `Ok`; returns the listener's fatal I/O error.
pub fn serve_exposition(
    listener: &TcpListener,
    render: impl Fn() -> String,
) -> std::io::Result<()> {
    loop {
        let (mut stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionAborted => continue,
            Err(e) => return Err(e),
        };
        // A misbehaving client only costs its own response.
        let _ = answer(&mut stream, &render);
    }
}

fn answer(stream: &mut TcpStream, render: &impl Fn() -> String) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers (bounded — this endpoint needs none of them).
    let mut header = String::new();
    for _ in 0..100 {
        header.clear();
        if reader.read_line(&mut header)? == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, body) = if method != "GET" {
        ("405 Method Not Allowed", "method not allowed\n".to_owned())
    } else if path == "/metrics" || path == "/" {
        ("200 OK", render())
    } else {
        (
            "404 Not Found",
            "not found; metrics are at /metrics\n".to_owned(),
        )
    };
    write!(
        stream,
        "HTTP/1.0 {status}\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn roundtrip(request: &str) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            answer(&mut stream, &|| "# TYPE up gauge\nup 1\n".to_owned()).unwrap();
        });
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        client.read_to_string(&mut response).unwrap();
        server.join().unwrap();
        response
    }

    #[test]
    fn serves_metrics_with_content_length() {
        let response = roundtrip("GET /metrics HTTP/1.0\r\nHost: x\r\nAccept: */*\r\n\r\n");
        assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "{response}");
        let body = "# TYPE up gauge\nup 1\n";
        assert!(response.contains(&format!("Content-Length: {}\r\n", body.len())));
        assert!(response.ends_with(body));
    }

    #[test]
    fn unknown_paths_get_404_and_posts_get_405() {
        assert!(roundtrip("GET /nope HTTP/1.0\r\n\r\n").starts_with("HTTP/1.0 404"));
        assert!(roundtrip("POST /metrics HTTP/1.0\r\n\r\n").starts_with("HTTP/1.0 405"));
    }
}
