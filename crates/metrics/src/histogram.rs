//! Mergeable log-linear latency histograms (HDR-style bucketing).
//!
//! A [`Histogram`] counts `u64` observations (by convention
//! microseconds — name the metric `*_us`) into a fixed set of
//! log-linear buckets: values below 16 get one exact bucket each, and
//! every higher power-of-two octave is split into 16 linear
//! sub-buckets. Bucket width is therefore at most 1/16 (6.25%) of the
//! bucket's lower bound, which bounds the error of every quantile
//! readout.
//!
//! Recording is lock-free: one relaxed fetch-add on the bucket, one on
//! the running sum, and a relaxed fetch-max for the exact maximum.
//! Relaxed ordering is sound because bucket counts are commutative
//! tallies — any interleaving of the same multiset of observations
//! produces the identical bucket vector, which is what the determinism
//! property tests pin.
//!
//! A [`HistogramSnapshot`] is a plain copy of the bucket vector.
//! Snapshots **merge** by element-wise addition — an associative,
//! commutative operation — so per-shard histograms can be aggregated in
//! any grouping without changing any quantile, the property future
//! sharded serving relies on. Quantiles read out the *upper bound* of
//! the bucket containing the nearest-rank observation: a deterministic
//! value from the fixed bucket grid, never an interpolation.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear buckets.
pub const SUB_BITS: u32 = 4;

/// Buckets per octave.
const SUBS: usize = 1 << SUB_BITS;

/// Total bucket count: 16 exact unit buckets for values `0..16`, then
/// 16 sub-buckets for each of the 60 octaves `[16, 32)`, `[32, 64)`, …
/// up through `u64::MAX`.
pub const BUCKETS: usize = SUBS + 60 * SUBS;

/// Worst-case relative bucket width: `(upper - lower) / lower` never
/// exceeds this (readouts are exact up to one bucket).
pub const RESOLUTION: f64 = 1.0 / SUBS as f64;

/// The bucket index for a value. Total order preserving: `a <= b`
/// implies `bucket_index(a) <= bucket_index(b)`.
pub fn bucket_index(value: u64) -> usize {
    if value < SUBS as u64 {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let shift = msb - SUB_BITS;
    let group = (shift + 1) as usize;
    group * SUBS + ((value >> shift) as usize & (SUBS - 1))
}

/// The inclusive `[lower, upper]` value range of a bucket.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKETS, "bucket index {index} out of range");
    let group = index / SUBS;
    let sub = (index % SUBS) as u64;
    if group == 0 {
        return (sub, sub);
    }
    let shift = (group - 1) as u32;
    let lower = (SUBS as u64 + sub) << shift;
    (lower, lower + ((1u64 << shift) - 1))
}

/// A lock-free log-linear histogram of `u64` observations.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation. Lock-free; safe from any thread.
    pub fn observe(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a millisecond measurement as microseconds (the
    /// convention for `*_us` latency histograms). Negative and
    /// non-finite inputs record as 0.
    pub fn observe_ms(&self, ms: f64) {
        let us = if ms.is_finite() && ms > 0.0 {
            (ms * 1e3) as u64
        } else {
            0
        };
        self.observe(us);
    }

    /// Copies the current bucket counts. Concurrent observations may or
    /// may not be included (each observation lands in exactly one
    /// bucket, so the snapshot is a valid histogram either way; only
    /// `sum`/`max` can be ahead of the buckets by in-flight updates).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`]: the unit snapshots
/// [`merge`](HistogramSnapshot::merge) and quantile readouts operate
/// on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    /// Sum of every recorded value.
    pub sum: u64,
    /// Exact maximum recorded value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (the merge identity).
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            sum: 0,
            max: 0,
        }
    }

    /// Total number of observations (derived from the buckets, so it is
    /// always consistent with the quantile readouts).
    pub fn count(&self) -> u64 {
        self.buckets.iter().fold(0, |a, &b| a.saturating_add(b))
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|&c| c == 0)
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum as f64 / count as f64
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) as the **upper bound** of the
    /// bucket holding the nearest-rank observation — deterministic, on
    /// the fixed bucket grid, and at most [`RESOLUTION`] above the true
    /// value. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return bucket_bounds(i).1;
            }
        }
        self.max
    }

    /// Element-wise sum of two snapshots: the shard-aggregation
    /// operation. Associative and commutative with
    /// [`HistogramSnapshot::empty`] as identity, so any merge tree over
    /// the same shards yields identical buckets (pinned by property
    /// tests).
    #[must_use]
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(&other.buckets)
                .map(|(a, b)| a.saturating_add(*b))
                .collect(),
            // Saturating: still associative and commutative (the sum of
            // unsigned values clamps to the same ceiling in any order).
            sum: self.sum.saturating_add(other.sum),
            max: self.max.max(other.max),
        }
    }

    /// Element-wise difference from an `earlier` snapshot of the *same*
    /// histogram: the per-interval view (e.g. one bench leg of a
    /// monotone server histogram). `sum` subtracts likewise; `max` is
    /// carried over from `self` (a maximum cannot be un-observed).
    #[must_use]
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(&earlier.buckets)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
        }
    }

    /// `(bucket_index, count)` for every non-empty bucket, in
    /// ascending value order (the exposition renderer's input).
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn bounds_invert_index_across_the_range() {
        for v in [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            33,
            100,
            1_000,
            65_535,
            65_536,
            1 << 40,
            (1 << 40) + 12345,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "value {v} outside bucket [{lo}, {hi}]");
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_bounds(BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn bucket_width_is_within_resolution() {
        for i in 16..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!((hi - lo) as f64 <= lo as f64 * RESOLUTION);
        }
    }

    #[test]
    fn quantiles_read_bucket_upper_bounds() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 4, 100] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(s.quantile(0.5), 3);
        // 100 lives in [96, 101]; the readout is the upper bound.
        assert_eq!(s.quantile(1.0), bucket_bounds(bucket_index(100)).1);
        assert_eq!(s.max, 100);
        assert_eq!(s.sum, 110);
    }

    #[test]
    fn observe_ms_converts_and_clamps() {
        let h = Histogram::new();
        h.observe_ms(1.5);
        h.observe_ms(-3.0);
        h.observe_ms(f64::NAN);
        let s = h.snapshot();
        assert_eq!(s.count(), 3);
        assert_eq!(s.max, 1500);
    }

    #[test]
    fn since_subtracts_bucketwise() {
        let h = Histogram::new();
        h.observe(10);
        let before = h.snapshot();
        h.observe(10);
        h.observe(500);
        let delta = h.snapshot().since(&before);
        assert_eq!(delta.count(), 2);
        assert_eq!(delta.sum, 510);
    }
}
