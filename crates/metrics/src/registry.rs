//! The metric registry: named families of counters, gauges, and
//! histograms with optional label sets.
//!
//! Registration (`counter`/`gauge`/`histogram` and their `_with` label
//! variants) is get-or-create behind one mutex and returns an
//! [`Arc`] handle — hot paths hold the handle and never touch the
//! registry again, so recording is lock-free. Families and label sets
//! are kept in [`BTreeMap`]s, which makes [`Registry::render`] emit the
//! Prometheus text exposition in one deterministic order.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::histogram::Histogram;

/// A monotone counter. `set` exists for mirroring an external monotone
/// source (e.g. a server's own atomic tallies) into the exposition.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value — only for mirroring a source that is
    /// itself monotone; never mix with `inc`/`add` on the same counter.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` (saturating at 0 under racing subtractions is the
    /// caller's concern; this is a plain wrapping decrement).
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// What a family holds (every sample of a family has one kind).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    pub(crate) fn exposition_name(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Clone)]
pub(crate) enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// One metric family: a help string, a kind, and one sample per
/// rendered label set (`""` for the unlabeled sample).
pub(crate) struct Family {
    pub(crate) help: String,
    pub(crate) kind: Kind,
    pub(crate) samples: BTreeMap<String, Metric>,
}

/// A collection of metric families. One registry per scope that must
/// render independently (the serve crate builds one per server so
/// parallel tests never share state); [`global`] is the process-wide
/// registry the core pipeline records into.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Family>>,
}

/// Valid Prometheus metric name: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Valid label name: `[a-zA-Z_][a-zA-Z0-9_]*`.
fn valid_label(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Renders a label set as it appears between `{}` in the exposition
/// (`key="value",…`), escaping `\`, `"`, and newlines in values.
pub(crate) fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        assert!(valid_label(k), "invalid label name {k:?}");
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn metric(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        kind: Kind,
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let key = render_labels(labels);
        let mut inner = self.inner.lock().unwrap();
        let family = inner.entry(name.to_owned()).or_insert_with(|| Family {
            help: help.to_owned(),
            kind,
            samples: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name} already registered as a {}",
            family.kind.exposition_name()
        );
        family.samples.entry(key).or_insert_with(make).clone()
    }

    /// Gets or creates the unlabeled counter `name`.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, &[], help)
    }

    /// Gets or creates the counter `name` with the given label set.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Counter> {
        match self.metric(name, labels, help, Kind::Counter, || {
            Metric::Counter(Arc::new(Counter::default()))
        }) {
            Metric::Counter(c) => c,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Gets or creates the unlabeled gauge `name`.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[], help)
    }

    /// Gets or creates the gauge `name` with the given label set.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Gauge> {
        match self.metric(name, labels, help, Kind::Gauge, || {
            Metric::Gauge(Arc::new(Gauge::default()))
        }) {
            Metric::Gauge(g) => g,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Gets or creates the unlabeled histogram `name`.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[], help)
    }

    /// Gets or creates the histogram `name` with the given label set.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
    ) -> Arc<Histogram> {
        match self.metric(name, labels, help, Kind::Histogram, || {
            Metric::Histogram(Arc::new(Histogram::new()))
        }) {
            Metric::Histogram(h) => h,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Renders every family in the Prometheus text exposition format
    /// (version 0.0.4), families and label sets in lexicographic order.
    pub fn render(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::new();
        for (name, family) in inner.iter() {
            crate::expo::render_family(&mut out, name, family);
        }
        out
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry. The core pipeline records per-probe and
/// per-round timings here; the serve metrics endpoint appends its
/// rendering after the server's own registry.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_per_label_set() {
        let r = Registry::new();
        let a = r.counter_with("requests_total", &[("outcome", "ok")], "requests");
        let b = r.counter_with("requests_total", &[("outcome", "ok")], "requests");
        let c = r.counter_with("requests_total", &[("outcome", "error")], "requests");
        a.inc();
        b.add(2);
        c.inc();
        assert_eq!(a.get(), 3, "same label set shares one counter");
        assert_eq!(c.get(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("thing", "a counter");
        let _ = r.gauge("thing", "now a gauge");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_panic() {
        let r = Registry::new();
        let _ = r.counter("bad name", "spaces are not allowed");
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(
            render_labels(&[("path", "a\\b\"c\nd")]),
            "path=\"a\\\\b\\\"c\\nd\""
        );
    }

    #[test]
    fn render_is_deterministic_and_sorted() {
        let r = Registry::new();
        r.gauge("z_last", "last").set(1);
        r.counter("a_first", "first").inc();
        let text = r.render();
        let first = text.find("a_first").unwrap();
        let last = text.find("z_last").unwrap();
        assert!(first < last, "families render in name order");
        assert_eq!(text, r.render(), "rendering is stable");
    }
}
