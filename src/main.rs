//! The `denali` command-line superoptimizer.
//!
//! ```text
//! denali FILE.dnl [--proc NAME] [--machine ev6|ev6-unclustered|single-issue|ia64like]
//!                 [--solver cdcl|dpll] [--engine sat|stochastic|auto]
//!                 [--threads N] [--portfolio N] [--load-latency N]
//!                 [--max-cycles N] [--incremental|--no-incremental]
//!                 [--delta-match|--no-delta-match]
//!                 [--probes] [-v|--verbose] [--trace] [--trace-out FILE]
//!                 [--trace-format jsonl|chrome] [--dump-dimacs DIR]
//!                 [--simulate name=value ...]
//! denali trace-report TRACE.jsonl
//! denali metrics-check EXPOSITION.txt
//! denali serve (--stdio | --listen ADDR) [--workers N] [--queue N]
//!              [--cache-bytes N] [--cache-dir DIR] [--machine M] [--solver S]
//!              [--engine sat|stochastic|auto]
//!              [--max-cycles N] [--threads N] [--portfolio N]
//!              [--coalesce|--no-coalesce] [--trace] [-v|--verbose]
//!              [--metrics-addr ADDR] [--slow-ms T --spool-dir DIR]
//!              [--trace-sample N] [--flight-capacity N]
//! ```
//!
//! Compiles a Denali source file, prints a Figure-4-style listing per
//! generated GMA, and optionally executes the result on the simulator.
//! `trace-report` renders the per-phase / per-axiom / per-probe summary
//! of a JSONL trace written by `--trace-out`. `serve` runs the
//! long-lived compilation server (framed JSONL protocol, see
//! `docs/SERVER.md`).

use std::collections::HashMap;
use std::process::ExitCode;

use denali::arch::{Machine, Simulator};
use denali::core::{Denali, EngineChoice, Options, SolverChoice};
use denali::trace::{chrome, jsonl, report, Tracer, Value};

#[derive(Clone, Copy, PartialEq)]
enum TraceFormat {
    Jsonl,
    Chrome,
}

struct Cli {
    file: String,
    proc_name: Option<String>,
    options: Options,
    show_probes: bool,
    verbose: bool,
    allocate: bool,
    simulate: Vec<(String, u64)>,
    trace_out: Option<std::path::PathBuf>,
    trace_format: TraceFormat,
}

fn usage() -> ! {
    eprintln!(
        "usage: denali FILE.dnl [--proc NAME] [--machine ev6|ev6-unclustered|single-issue|ia64like]\n\
         \x20                   [--solver cdcl|dpll] [--engine sat|stochastic|auto]\n\
         \x20                   [--threads N] [--portfolio N] [--load-latency N]\n\
         \x20                   [--max-cycles N] [--incremental|--no-incremental]\n\
         \x20                   [--delta-match|--no-delta-match]\n\
         \x20                   [--probes] [-v|--verbose] [--trace] [--trace-out FILE]\n\
         \x20                   [--trace-format jsonl|chrome] [--allocate] [--dump-dimacs DIR]\n\
         \x20                   [--simulate name=value ...]\n\
         \x20      denali trace-report TRACE.jsonl\n\
         \x20      denali metrics-check EXPOSITION.txt\n\
         \x20      denali serve (--stdio | --listen ADDR) [--workers N] [--queue N]\n\
         \x20                   [--cache-bytes N] [--cache-dir DIR] [--machine M] [--solver S]\n\
         \x20                   [--engine sat|stochastic|auto] [--max-cycles N]\n\
         \x20                   [--threads N] [--portfolio N]\n\
         \x20                   [--coalesce|--no-coalesce] [--trace] [-v|--verbose]\n\
         \x20                   [--metrics-addr ADDR] [--slow-ms T --spool-dir DIR]\n\
         \x20                   [--trace-sample N] [--flight-capacity N]\n\
         \x20 --engine E        optimizer engine: sat (goal-directed search, default), stochastic\n\
         \x20                   (MCMC over instruction sketches), or auto (SAT with stochastic\n\
         \x20                   fallback + anytime candidates under deadlines; also DENALI_ENGINE)\n\
         \x20 --threads N       worker threads for matching + speculative probes (0 = all CPUs, 1 = serial)\n\
         \x20 --portfolio N     race N diversified CDCL configurations per probe, first verdict wins\n\
         \x20                   (0/1 = off; output is byte-identical either way; also DENALI_PORTFOLIO)\n\
         \x20 --no-incremental  fresh SAT solver per probe instead of one persistent solver (serial CDCL)\n\
         \x20 --no-delta-match  re-match every axiom against the whole e-graph each saturation round\n\
         \x20 --trace           collect a structured trace (also DENALI_TRACE=1)\n\
         \x20 --trace-out FILE  write the trace to FILE (implies --trace; jsonl unless --trace-format chrome)\n\
         \x20 -v, --verbose     per-round matcher detail + probe log (implies --trace and --probes)\n\
         \x20 trace-report      summarize a JSONL trace (phases, axioms, probes, serve requests)\n\
         \x20 metrics-check     validate a saved Prometheus text exposition (a /metrics scrape)\n\
         \x20 serve             run the compilation server (JSONL protocol, docs/SERVER.md)\n\
         \x20 --no-coalesce     serve: compile concurrent duplicate requests independently\n\
         \x20                   instead of single-flighting them behind one leader\n\
         \x20 --metrics-addr    serve: expose Prometheus text metrics at http://ADDR/metrics\n\
         \x20 --slow-ms T       serve: spool full traces of requests slower than T ms to\n\
         \x20                   --spool-dir DIR (works even with --trace off)\n\
         \x20 --trace-sample N  serve: keep a full trace for 1 in N requests in the flight\n\
         \x20                   recorder ring (read back with a `flight` request; 0 = off)"
    );
    std::process::exit(2);
}

fn parse_cli() -> Cli {
    let mut args = std::env::args().skip(1);
    let mut cli = Cli {
        file: String::new(),
        proc_name: None,
        options: Options::default(),
        show_probes: false,
        verbose: false,
        allocate: false,
        simulate: Vec::new(),
        trace_out: None,
        trace_format: TraceFormat::Jsonl,
    };
    let need = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            usage();
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--proc" => cli.proc_name = Some(need(&mut args, "--proc")),
            "--machine" => {
                cli.options.machine = match need(&mut args, "--machine").as_str() {
                    "ev6" => Machine::ev6(),
                    "ia64like" => Machine::ia64like(),
                    "ev6-unclustered" => Machine::ev6_unclustered(),
                    "single-issue" => Machine::single_issue(),
                    other => {
                        eprintln!("unknown machine {other}");
                        usage();
                    }
                }
            }
            "--solver" => {
                cli.options.solver = match need(&mut args, "--solver").as_str() {
                    "cdcl" => SolverChoice::Cdcl,
                    "dpll" => SolverChoice::Dpll,
                    other => {
                        eprintln!("unknown solver {other}");
                        usage();
                    }
                }
            }
            "--engine" => {
                let name = need(&mut args, "--engine");
                cli.options.engine = EngineChoice::parse(&name).unwrap_or_else(|| {
                    eprintln!("unknown engine {name} (known: sat, stochastic, auto)");
                    usage();
                })
            }
            "--load-latency" => {
                cli.options.load_latency = Some(
                    need(&mut args, "--load-latency")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--max-cycles" => {
                cli.options.max_cycles = need(&mut args, "--max-cycles")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--threads" => {
                cli.options.threads = need(&mut args, "--threads")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--portfolio" => {
                cli.options.portfolio = need(&mut args, "--portfolio")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--incremental" => cli.options.incremental = true,
            "--no-incremental" => cli.options.incremental = false,
            "--delta-match" => cli.options.saturation.delta_match = true,
            "--no-delta-match" => cli.options.saturation.delta_match = false,
            "--probes" => cli.show_probes = true,
            "-v" | "--verbose" => cli.verbose = true,
            "--trace" => cli.options.trace = true,
            "--trace-out" => {
                cli.trace_out = Some(need(&mut args, "--trace-out").into());
                cli.options.trace = true;
            }
            "--trace-format" => {
                cli.trace_format = match need(&mut args, "--trace-format").as_str() {
                    "jsonl" => TraceFormat::Jsonl,
                    "chrome" => TraceFormat::Chrome,
                    other => {
                        eprintln!("unknown trace format {other}");
                        usage();
                    }
                }
            }
            "--allocate" => cli.allocate = true,
            "--pipeline" => cli.options.pipeline_loads = true,
            "--dump-dimacs" => {
                cli.options.dump_dimacs = Some(need(&mut args, "--dump-dimacs").into())
            }
            "--simulate" => {
                let binding = need(&mut args, "--simulate");
                let Some((name, value)) = binding.split_once('=') else {
                    eprintln!("--simulate expects name=value");
                    usage();
                };
                let value = denali::term::term::parse_integer(value).unwrap_or_else(|| {
                    eprintln!("bad value in {binding}");
                    usage();
                });
                cli.simulate.push((name.to_owned(), value));
            }
            "--help" | "-h" => usage(),
            _ if cli.file.is_empty() && !arg.starts_with('-') => cli.file = arg,
            other => {
                eprintln!("unknown argument {other}");
                usage();
            }
        }
    }
    if cli.file.is_empty() {
        usage();
    }
    if cli.verbose {
        cli.show_probes = true;
        cli.options.trace = true;
    }
    cli
}

/// Writes the collected trace to `--trace-out` in the chosen format.
/// Called on every exit path (success, refutation, pipeline error) so a
/// failed compilation still leaves its trace behind.
fn flush_trace(cli: &Cli, tracer: &Tracer) -> Result<(), String> {
    let Some(path) = &cli.trace_out else {
        return Ok(());
    };
    let records = tracer.records();
    let text = match cli.trace_format {
        TraceFormat::Jsonl => {
            jsonl::to_string(&[("source", Value::from(cli.file.as_str()))], &records)
        }
        TraceFormat::Chrome => chrome::to_string(&records),
    };
    std::fs::write(path, text).map_err(|e| format!("cannot write trace {}: {e}", path.display()))
}

/// The `denali trace-report FILE.jsonl` subcommand: parse a JSONL trace
/// and render its summary tables.
fn trace_report(path: &str) -> ExitCode {
    let input = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match jsonl::parse_records(&input) {
        Ok(records) => {
            print!("{}", report::render(&records));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {path} is not a JSONL trace: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The `denali metrics-check` subcommand: validate a saved Prometheus
/// text exposition (e.g. a scrape of `GET /metrics`) against the
/// grammar. Keeps CI honest without a network-installed linter.
fn metrics_check(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match denali::metrics::validate_exposition(&text) {
        Ok(()) => {
            let families = text
                .lines()
                .filter(|line| line.starts_with("# TYPE "))
                .count();
            println!("{path}: ok ({families} metric families)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The `denali serve` subcommand: the long-lived compilation server.
fn serve(args: &[String]) -> ExitCode {
    use denali::serve::{serve_stdio, serve_tcp, Server, ServerConfig};

    let mut config = ServerConfig::default();
    let mut listen: Option<String> = None;
    let mut metrics_addr: Option<String> = None;
    let mut stdio = false;
    let mut args = args.iter();
    let need = |args: &mut dyn Iterator<Item = &String>, flag: &str| -> String {
        args.next().cloned().unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            usage();
        })
    };
    let parse = |value: String, flag: &str| -> usize {
        value.parse().unwrap_or_else(|_| {
            eprintln!("bad value for {flag}");
            usage();
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--stdio" => stdio = true,
            "--listen" => listen = Some(need(&mut args, "--listen")),
            "--workers" => config.workers = parse(need(&mut args, "--workers"), "--workers"),
            "--queue" => config.queue = parse(need(&mut args, "--queue"), "--queue"),
            "--cache-bytes" => {
                config.cache_bytes = parse(need(&mut args, "--cache-bytes"), "--cache-bytes")
            }
            "--cache-dir" => config.cache_dir = Some(need(&mut args, "--cache-dir").into()),
            "--machine" => {
                let name = need(&mut args, "--machine");
                config.base.machine = match denali::serve::protocol::machine_by_name(&name) {
                    Ok(machine) => machine,
                    Err(e) => {
                        eprintln!("{e}");
                        usage();
                    }
                }
            }
            "--solver" => {
                config.base.solver = match need(&mut args, "--solver").as_str() {
                    "cdcl" => SolverChoice::Cdcl,
                    "dpll" => SolverChoice::Dpll,
                    other => {
                        eprintln!("unknown solver {other}");
                        usage();
                    }
                }
            }
            "--engine" => {
                let name = need(&mut args, "--engine");
                config.base.engine = EngineChoice::parse(&name).unwrap_or_else(|| {
                    eprintln!("unknown engine {name} (known: sat, stochastic, auto)");
                    usage();
                })
            }
            "--max-cycles" => {
                config.base.max_cycles =
                    parse(need(&mut args, "--max-cycles"), "--max-cycles") as u32
            }
            "--threads" => config.base.threads = parse(need(&mut args, "--threads"), "--threads"),
            "--portfolio" => {
                config.base.portfolio = parse(need(&mut args, "--portfolio"), "--portfolio")
            }
            "--coalesce" => config.coalesce = true,
            "--no-coalesce" => config.coalesce = false,
            "--trace" => config.base.trace = true,
            "--metrics-addr" => metrics_addr = Some(need(&mut args, "--metrics-addr")),
            "--slow-ms" => {
                config.slow_ms = Some(parse(need(&mut args, "--slow-ms"), "--slow-ms") as u64)
            }
            "--spool-dir" => config.spool_dir = Some(need(&mut args, "--spool-dir").into()),
            "--trace-sample" => {
                config.trace_sample =
                    parse(need(&mut args, "--trace-sample"), "--trace-sample") as u64
            }
            "--flight-capacity" => {
                config.flight_capacity =
                    parse(need(&mut args, "--flight-capacity"), "--flight-capacity")
            }
            "-v" | "--verbose" => config.verbose = true,
            other => {
                eprintln!("unknown serve argument {other}");
                usage();
            }
        }
    }
    if stdio == listen.is_some() {
        eprintln!("serve needs exactly one of --stdio or --listen ADDR");
        usage();
    }
    if config.slow_ms.is_some() && config.spool_dir.is_none() {
        eprintln!("--slow-ms needs --spool-dir DIR (nowhere to spool slow traces)");
        usage();
    }
    let server = match Server::new(config) {
        Ok(server) => std::sync::Arc::new(server),
        Err(e) => {
            eprintln!("error: cannot start server: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(addr) = metrics_addr {
        let listener = match std::net::TcpListener::bind(&addr) {
            Ok(listener) => listener,
            Err(e) => {
                eprintln!("error: cannot bind metrics address {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        // Printed unconditionally (unlike the verbose-gated serve
        // banner): with `--metrics-addr 127.0.0.1:0` this line is the
        // only way for a harness to learn the bound port.
        match listener.local_addr() {
            Ok(local) => eprintln!("serve: metrics on {local}"),
            Err(_) => eprintln!("serve: metrics on {addr}"),
        }
        let scrape = std::sync::Arc::clone(&server);
        std::thread::Builder::new()
            .name("serve-metrics".to_owned())
            .spawn(move || {
                if let Err(e) =
                    denali::metrics::serve_exposition(&listener, || scrape.metrics_text())
                {
                    eprintln!("error: metrics endpoint: {e}");
                }
            })
            .expect("spawn metrics thread");
    }
    let result = match listen {
        None => serve_stdio(&server),
        Some(addr) => serve_tcp(&server, &addr),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    {
        let args: Vec<String> = std::env::args().skip(1).collect();
        if args.first().map(String::as_str) == Some("trace-report") {
            match args.get(1) {
                Some(path) if args.len() == 2 => return trace_report(path),
                _ => {
                    eprintln!("trace-report expects exactly one JSONL file");
                    usage();
                }
            }
        }
        if args.first().map(String::as_str) == Some("serve") {
            return serve(&args[1..]);
        }
        if args.first().map(String::as_str) == Some("metrics-check") {
            match args.get(1) {
                Some(path) if args.len() == 2 => return metrics_check(path),
                _ => {
                    eprintln!("metrics-check expects exactly one exposition file");
                    usage();
                }
            }
        }
    }
    let cli = parse_cli();
    let source = match std::fs::read_to_string(&cli.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", cli.file);
            return ExitCode::FAILURE;
        }
    };
    let denali = Denali::new(cli.options.clone());
    let result = match &cli.proc_name {
        None => denali.compile_source(&source),
        Some(name) => match denali::lang::parse_program(&source) {
            Ok(program) => denali.compile_proc(&program, name),
            Err(e) => {
                eprintln!("error: parse: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let result = match result {
        Ok(r) => r,
        Err(e) => {
            // Refutations ("no schedule within N cycles") and pipeline
            // errors land here: still report the phases reached and
            // flush the trace, so failed runs are diagnosable.
            eprintln!("error: {e}");
            if denali.tracer().is_enabled() {
                eprintln!(
                    "// phases: {}",
                    report::phase_line(&denali.tracer().records())
                );
            }
            if let Err(msg) = flush_trace(&cli, denali.tracer()) {
                eprintln!("error: {msg}");
            }
            return ExitCode::FAILURE;
        }
    };

    for compiled in &result.gmas {
        println!(
            "// {}: {} cycles ({} instructions){}",
            compiled.gma.name,
            compiled.cycles,
            compiled.program.len(),
            if compiled.refuted_below {
                format!(", {} cycles refuted", compiled.cycles.saturating_sub(1))
            } else {
                String::new()
            }
        );
        if cli.show_probes {
            for probe in &compiled.probes {
                println!("//   {probe}");
            }
            println!(
                "//   matching: {:.1} ms ({} nodes, {} classes); SAT total {:.1} ms",
                compiled.match_ms,
                compiled.matcher.nodes,
                compiled.matcher.classes,
                compiled.solver_ms()
            );
            println!("//   phases: {}", compiled.telemetry);
        }
        if cli.verbose {
            for (i, round) in compiled.matcher.rounds.iter().enumerate() {
                let kind = if round.verification {
                    " (verify)"
                } else if round.full {
                    " (full)"
                } else {
                    ""
                };
                println!(
                    "//   round {i}{kind}: scanned {}, skipped {}, instances {}, {:.1} ms",
                    round.scanned, round.skipped, round.instances, round.ms
                );
            }
        }
        if cli.allocate {
            match denali::arch::allocate(
                &compiled.program,
                &denali.options().machine,
                &denali::arch::alpha_temp_pool(),
            ) {
                Ok(allocated) => {
                    println!(
                        "{}",
                        allocated.listing(denali.options().machine.issue_width())
                    )
                }
                Err(e) => {
                    eprintln!("// register allocation failed: {e}");
                    println!(
                        "{}",
                        compiled
                            .program
                            .listing(denali.options().machine.issue_width())
                    );
                }
            }
        } else {
            println!(
                "{}",
                compiled
                    .program
                    .listing(denali.options().machine.issue_width())
            );
        }
    }

    if !cli.simulate.is_empty() {
        let sim = Simulator::new(&denali.options().machine);
        for compiled in &result.gmas {
            let inputs: Vec<(&str, u64)> = cli
                .simulate
                .iter()
                .map(|(n, v)| (n.as_str(), *v))
                .filter(|(n, _)| {
                    compiled
                        .program
                        .input_reg(denali::term::Symbol::intern(n))
                        .is_some()
                })
                .collect();
            match sim.run_named(&compiled.program, &inputs, HashMap::new()) {
                Ok(outcome) => {
                    for (name, reg) in &compiled.program.outputs {
                        println!(
                            "// {}: {name} = {:#x}",
                            compiled.gma.name, outcome.regs[reg]
                        );
                    }
                }
                Err(e) => {
                    eprintln!(
                        "// {}: simulation needs more inputs ({e})",
                        compiled.gma.name
                    );
                }
            }
        }
    }

    if let Err(msg) = flush_trace(&cli, denali.tracer()) {
        eprintln!("error: {msg}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
