#![warn(missing_docs)]

//! Denali: a goal-directed superoptimizer (façade crate).
//!
//! This crate re-exports the public APIs of the component crates of the
//! Denali reproduction (Joshi, Nelson & Randall, PLDI 2002):
//!
//! * [`term`] — symbols, terms, 64-bit operation semantics, s-expressions,
//! * [`sat`] — a from-scratch CDCL SAT solver (the CHAFF substitute),
//! * [`egraph`] — the E-graph with congruence closure and e-matching,
//! * [`axioms`] — mathematical and architectural axiom sets,
//! * [`arch`] — the EV6-like machine description, assembler, and simulator,
//! * [`lang`] — the Denali source language and lowering to guarded
//!   multi-assignments,
//! * [`core`] — the matcher, the SAT constraint generator, the cycle-budget
//!   search, and code extraction,
//! * [`baseline`] — the brute-force superoptimizer and conventional
//!   rewriting-compiler baselines used in the paper's evaluation,
//! * [`trace`] — structured tracing: hierarchical spans, JSONL and
//!   Chrome-trace sinks, and summary reports (see `docs/TRACING.md`),
//! * [`metrics`] — zero-dependency process metrics: lock-free counters,
//!   gauges, mergeable log-linear latency histograms, and Prometheus
//!   text exposition,
//! * [`serve`] — the compilation server: framed JSONL protocol over
//!   stdio/TCP, content-addressed result cache, request deadlines with
//!   graceful degradation (see `docs/SERVER.md`).
//!
//! # Quickstart
//!
//! ```
//! use denali::core::{Denali, Options};
//!
//! // Generate code for the paper's Figure 2 term: reg6*4 + 1.
//! let denali = Denali::new(Options::default());
//! let result = denali
//!     .compile_source("(\\procdecl f ((reg6 long)) long (:= (\\res (+ (* reg6 4) 1))))")
//!     .expect("compilation succeeds");
//! assert_eq!(result.gmas[0].program.cycles(), 1); // a single s4addq
//! ```

pub use denali_arch as arch;
pub use denali_axioms as axioms;
pub use denali_baseline as baseline;
pub use denali_core as core;
pub use denali_egraph as egraph;
pub use denali_lang as lang;
pub use denali_metrics as metrics;
pub use denali_sat as sat;
pub use denali_serve as serve;
pub use denali_term as term;
pub use denali_trace as trace;
