//! The paper's largest challenge problem: the packet checksum inner
//! loop (§8, Figures 5 and 6).
//!
//! ```sh
//! cargo run --release --example checksum
//! ```
//!
//! Compiles the 4×-unrolled, hand-pipelined loop with its
//! program-specific `add`/`carry` axioms, prints the scheduled loop
//! body, and runs the generated loop over a buffer on the simulator,
//! checking the sums against a host-computed wraparound checksum.

use std::collections::HashMap;

use denali::arch::Simulator;
use denali::core::{Denali, Options};
use denali::term::Symbol;
use denali_bench::programs::CHECKSUM;

/// 64-bit add with end-around carry (the program axiom's `add`).
fn add_wrap(a: u64, b: u64) -> u64 {
    let s = a.wrapping_add(b);
    s.wrapping_add(u64::from(s < a))
}

fn main() {
    let denali = Denali::new(Options::default());
    let result = denali.compile_source(CHECKSUM).expect("compiles");
    println!("{} GMAs generated:", result.gmas.len());
    for compiled in &result.gmas {
        println!(
            "  {}: {} cycles, {} instructions",
            compiled.gma.name,
            compiled.cycles,
            compiled.program.len()
        );
    }

    let body = result
        .gmas
        .iter()
        .find(|g| g.gma.name.contains("loop"))
        .expect("loop body");
    println!("\nscheduled loop body:\n{}", body.program.listing(4));

    // Drive the generated loop body over a 16-word buffer: run the loop
    // GMA's code once per unrolled group, feeding outputs back in.
    let words: Vec<u64> = (0..16u64)
        .map(|i| 0x0123_4567_89ab_cdefu64.rotate_left(i as u32))
        .collect();
    let base = 0x1000u64;
    let memory: HashMap<u64, u64> = words
        .iter()
        .enumerate()
        .map(|(i, &w)| (base + 8 * i as u64, w))
        .collect();

    let sim = Simulator::new(&denali.options().machine);
    let program = &body.program;
    let out_reg = |name: &str| program.output_reg(Symbol::intern(name)).expect("output");

    // Initial state mirrors the prologue: sums zero, v1..v4 preloaded.
    let mut state: HashMap<&str, u64> = HashMap::from([
        ("sum1", 0u64),
        ("sum2", 0),
        ("sum3", 0),
        ("sum4", 0),
        ("v1", words[0]),
        ("v2", words[1]),
        ("v3", words[2]),
        ("v4", words[3]),
        ("ptr", base),
        ("ptrend", base + 8 * 12),
    ]);
    loop {
        let inputs: Vec<(&str, u64)> = state.iter().map(|(&k, &v)| (k, v)).collect();
        let outcome = sim
            .run_named(program, &inputs, memory.clone())
            .expect("loop body simulates");
        if outcome.regs[&out_reg("guard")] == 0 {
            break;
        }
        for name in [
            "sum1", "sum2", "sum3", "sum4", "v1", "v2", "v3", "v4", "ptr",
        ] {
            state.insert(name, outcome.regs[&out_reg(name)]);
        }
    }

    // Host reference: the same pipelined accumulation.
    let mut sums = [0u64; 4];
    for (i, &w) in words[..12].iter().enumerate() {
        sums[i % 4] = add_wrap(sums[i % 4], w);
    }
    // Note the generated loop runs while ptr < ptrend, accumulating the
    // *previous* iteration's loads — the software pipelining of Fig. 6.
    println!(
        "simulated sums: {:#x?} {:#x?} {:#x?} {:#x?}",
        state["sum1"], state["sum2"], state["sum3"], state["sum4"]
    );
    assert_eq!(state["sum1"], sums[0]);
    assert_eq!(state["sum2"], sums[1]);
    assert_eq!(state["sum3"], sums[2]);
    assert_eq!(state["sum4"], sums[3]);
    println!("sums match the host-computed wraparound checksum");
}
