//! Quickstart: superoptimize the paper's Figure 2 term.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Compiles `reg6 * 4 + 1`, shows how the matcher discovers the
//! `s4addq` way of computing it, and prints the generated schedule with
//! the SAT probes that proved it optimal.

use denali::core::{Denali, Options};

fn main() {
    let source = "(\\procdecl f ((reg6 long)) long (:= (\\res (+ (* reg6 4) 1))))";
    println!("source:\n  {source}\n");

    let denali = Denali::new(Options::default());
    let result = denali.compile_source(source).expect("compilation succeeds");
    let compiled = &result.gmas[0];

    println!(
        "matching: {} e-nodes, {} classes, {} axiom instances, quiescent = {}",
        compiled.matcher.nodes,
        compiled.matcher.classes,
        compiled.matcher.instances,
        compiled.matcher.saturated
    );
    println!("\ncycle-budget search:");
    for probe in &compiled.probes {
        println!("  {probe}");
    }
    println!(
        "\noptimal: {} cycle(s){}\n",
        compiled.cycles,
        if compiled.refuted_below {
            " (one cycle fewer is refuted)"
        } else {
            ""
        }
    );
    println!("{}", compiled.program.listing(4));

    // Execute the generated code on the simulator.
    let sim = denali::arch::Simulator::new(&denali.options().machine);
    let outcome = sim
        .run_named(&compiled.program, &[("reg6", 10)], Default::default())
        .expect("simulation succeeds");
    let res = compiled
        .program
        .output_reg(denali::term::Symbol::intern("res"))
        .expect("result register");
    println!("simulated: f(10) = {}", outcome.regs[&res]);
    assert_eq!(outcome.regs[&res], 41);
}
