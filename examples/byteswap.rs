//! The paper's headline experiment: 4-byte swap (§8, Figures 3 and 4).
//!
//! ```sh
//! cargo run --release --example byteswap
//! ```
//!
//! Generates the 5-cycle EV6 schedule, proves 4 cycles impossible,
//! compares with the conventional rewriting compiler, and checks the
//! generated code against the reference semantics on random inputs.

use denali::arch::{Machine, Simulator};
use denali::baseline::rewrite_compile;
use denali::core::{Denali, Options};
use denali::lang::{lower_proc, parse_program};
use denali::term::Symbol;
use denali_bench::programs::BYTESWAP4;

fn reference_swap(a: u64) -> u64 {
    ((a & 0xff) << 24) | (((a >> 8) & 0xff) << 16) | (((a >> 16) & 0xff) << 8) | ((a >> 24) & 0xff)
    // lower four bytes only; the upper bytes are zeroed
}

fn main() {
    println!("byteswap4 source (Figure 3, in this reproduction's syntax):");
    println!("{BYTESWAP4}\n");

    let denali = Denali::new(Options::default());
    let result = denali.compile_source(BYTESWAP4).expect("compiles");
    let compiled = &result.gmas[0];

    println!(
        "Denali: {} cycles, {} instructions (matching {:.1} s, SAT {:.2} s of {:.1} s total)",
        compiled.cycles,
        compiled.program.len(),
        compiled.match_ms / 1e3,
        compiled.solver_ms() / 1e3,
        (compiled.match_ms + compiled.search_ms) / 1e3,
    );
    for probe in &compiled.probes {
        println!("  {probe}");
    }
    println!("\n{}", compiled.program.listing(4));

    // The conventional compiler on the same GMA.
    let program = parse_program(BYTESWAP4).expect("parses");
    let gma = lower_proc(&program.procs[0]).expect("lowers").remove(0);
    let baseline = rewrite_compile(&gma, &Machine::ev6()).expect("baseline compiles");
    println!(
        "conventional rewriting compiler: {} cycles, {} instructions\n",
        baseline.cycles(),
        baseline.len()
    );

    // Differential check on a few interesting inputs.
    let sim = Simulator::new(&denali.options().machine);
    let res = compiled.program.output_reg(Symbol::intern("res")).unwrap();
    for a in [0x11223344u64, 0, u64::MAX, 0xdeadbeef, 0x0102030405060708] {
        let outcome = sim
            .run_named(&compiled.program, &[("a", a)], Default::default())
            .expect("simulates");
        let got = outcome.regs[&res];
        let want = reference_swap(a);
        assert_eq!(got, want, "mismatch for a = {a:#x}");
        println!("byteswap4({a:#018x}) = {got:#010x}  ok");
    }
}
