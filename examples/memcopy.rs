//! The paper's §3 running example: the inner loop of a copy routine.
//!
//! ```sh
//! cargo run --release --example memcopy
//! ```
//!
//! `p < r → (*p, p, q) := (*q, p+8, q+8)` exercises the memory
//! machinery: pointer dereferences lower to `select`/`store` on `M`,
//! the select/store axiom's *clause* fires during matching, and the
//! schedule must order the load before the (possibly aliasing) store
//! while overlapping the pointer bumps and the guard.

use std::collections::HashMap;

use denali::arch::Simulator;
use denali::core::{Denali, Options};
use denali::term::Symbol;

const COPY: &str = "
(\\procdecl copy ((p long*) (q long*) (r long*)) long
  (\\do (-> (<u p r)
    (:= ((\\deref p) (\\deref q)) (p (+ p 8)) (q (+ q 8))))))";

fn main() {
    println!("copy-loop source (§3):{COPY}\n");
    let denali = Denali::new(Options::default());
    let result = denali.compile_source(COPY).expect("compiles");
    let compiled = &result.gmas[0];
    println!(
        "loop body: {} cycles, {} instructions\n",
        compiled.cycles,
        compiled.program.len()
    );
    println!("{}", compiled.program.listing(4));

    // Drive the loop: copy 6 words from q-region to p-region.
    let src = 0x2000u64;
    let dst = 0x1000u64;
    let memory: HashMap<u64, u64> = (0..6u64).map(|i| (src + 8 * i, 100 + i)).collect();

    let sim = Simulator::new(&denali.options().machine);
    let program = &compiled.program;
    let out = |name: &str| program.output_reg(Symbol::intern(name)).expect("output");

    let mut p = dst;
    let mut q = src;
    let r = dst + 8 * 6;
    let mut memory = memory;
    loop {
        let outcome = sim
            .run_named(program, &[("p", p), ("q", q), ("r", r)], memory.clone())
            .expect("simulates");
        if outcome.regs[&out("guard")] == 0 {
            break;
        }
        memory = outcome.memory;
        p = outcome.regs[&out("p")];
        q = outcome.regs[&out("q")];
    }

    for i in 0..6u64 {
        let copied = memory.get(&(dst + 8 * i)).copied().unwrap_or(0);
        assert_eq!(copied, 100 + i, "word {i}");
        println!("M[dst + {:2}] = {copied}", 8 * i);
    }
    println!("\nall 6 words copied correctly");
}
